#include "core/summary_cache_node.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sc {
namespace {

SummaryCacheNodeConfig cfg(NodeId id, std::uint64_t expected_docs = 1024) {
    SummaryCacheNodeConfig c;
    c.node_id = id;
    c.expected_docs = expected_docs;
    return c;
}

// Deliver every pending update datagram from `from` to `to`. WHEN to
// encode is the DeltaBatcher's decision (tests/core/delta_batcher_test);
// the node encodes whatever churn is pending.
void sync(SummaryCacheNode& from, SummaryCacheNode& to) {
    for (const auto& msg : from.encode_pending_updates())
        ASSERT_TRUE(to.apply_sibling_update(decode_dirupdate(msg)));
}

TEST(SummaryCacheNode, NoUpdatesWithoutDirectoryChurn) {
    SummaryCacheNode node(cfg(1));
    EXPECT_TRUE(node.encode_pending_updates().empty());
}

TEST(SummaryCacheNode, UpdateEmittedForPendingChanges) {
    SummaryCacheNode node(cfg(1));
    node.on_cache_insert("http://a/1");
    const auto msgs = node.encode_pending_updates();
    EXPECT_FALSE(msgs.empty());
    EXPECT_EQ(node.updates_sent(), msgs.size());
    // The delta log was consumed: nothing further is pending.
    EXPECT_TRUE(node.encode_pending_updates().empty());
}

TEST(SummaryCacheNode, DiscardDeltaDropsPendingChanges) {
    SummaryCacheNode node(cfg(1));
    node.on_cache_insert("http://a/1");
    node.discard_delta();  // pull mode: siblings fetch full digests instead
    EXPECT_TRUE(node.encode_pending_updates().empty());
}

TEST(SummaryCacheNode, SiblingLearnsViaDeltaUpdates) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    a.on_cache_insert("http://shared/doc");
    sync(a, b);
    EXPECT_TRUE(b.sibling_may_contain(1, "http://shared/doc"));
    EXPECT_EQ(b.promising_siblings("http://shared/doc"), std::vector<NodeId>{1});
    EXPECT_TRUE(b.promising_siblings("http://other/doc").empty());
}

TEST(SummaryCacheNode, EraseEventuallyClearsSiblingView) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    a.on_cache_insert("u");
    sync(a, b);
    a.on_cache_erase("u");
    a.on_cache_insert("v");
    sync(a, b);
    EXPECT_FALSE(b.sibling_may_contain(1, "u"));
    EXPECT_TRUE(b.sibling_may_contain(1, "v"));
}

TEST(SummaryCacheNode, FullUpdateBootstrapsSibling) {
    SummaryCacheNode a(cfg(1));
    for (int i = 0; i < 50; ++i) a.on_cache_insert("d" + std::to_string(i));
    SummaryCacheNode b(cfg(2));
    ASSERT_TRUE(b.apply_sibling_update(decode_dirupdate(a.encode_full_update())));
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(b.sibling_may_contain(1, "d" + std::to_string(i))) << i;
    EXPECT_EQ(b.known_siblings(), 1u);
}

TEST(SummaryCacheNode, DuplicatedUpdateDeliveryIsIdempotent) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    a.on_cache_insert("x");
    const auto msgs = a.encode_pending_updates();
    ASSERT_EQ(msgs.size(), 1u);
    const auto update = decode_dirupdate(msgs[0]);
    ASSERT_TRUE(b.apply_sibling_update(update));
    ASSERT_TRUE(b.apply_sibling_update(update));  // duplicate datagram
    EXPECT_TRUE(b.sibling_may_contain(1, "x"));
    const std::shared_ptr<const BloomFilter> f = b.sibling_filter(1);
    ASSERT_NE(f, nullptr);
    EXPECT_LE(f->popcount(), 4u);  // absolute values: no double-set effects
}

TEST(SummaryCacheNode, LostUpdateOnlyCausesFalseMissesNotCorruption) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    a.on_cache_insert("first");
    (void)a.encode_pending_updates();  // "lost" in the network
    a.on_cache_insert("second");
    sync(a, b);
    // b missed "first" (a false miss from b's perspective) but applied
    // "second" correctly — absolute-value records survive gaps.
    EXPECT_TRUE(b.sibling_may_contain(1, "second"));
    EXPECT_FALSE(b.sibling_may_contain(1, "first"));
    // A later full refresh repairs the gap.
    ASSERT_TRUE(b.apply_sibling_update(decode_dirupdate(a.encode_full_update())));
    EXPECT_TRUE(b.sibling_may_contain(1, "first"));
}

TEST(SummaryCacheNode, LargeDeltaIsChunked) {
    SummaryCacheNode a(cfg(1, /*expected_docs=*/200'000));  // flips rarely collide
    // ~100k inserts * up to 4 flips each >> kMaxRecordsPerUpdate.
    for (int i = 0; i < 40'000; ++i) a.on_cache_insert("doc" + std::to_string(i));
    const auto msgs = a.encode_pending_updates();
    EXPECT_GT(msgs.size(), 1u);
    for (const auto& m : msgs) EXPECT_LE(m.size(), kMaxIcpDatagram);
    // All chunks apply cleanly.
    SummaryCacheNode b(cfg(2));
    for (const auto& m : msgs) ASSERT_TRUE(b.apply_sibling_update(decode_dirupdate(m)));
    EXPECT_TRUE(b.sibling_may_contain(1, "doc0"));
    EXPECT_TRUE(b.sibling_may_contain(1, "doc39999"));
}

TEST(SummaryCacheNode, SmallTablePrefersFullBitmap) {
    SummaryCacheNode a(cfg(1, /*expected_docs=*/64));  // full bitmap beats a large delta
    for (int i = 0; i < 500; ++i) a.on_cache_insert("k" + std::to_string(i));
    const auto msgs = a.encode_pending_updates();
    ASSERT_EQ(msgs.size(), 1u);
    const auto update = decode_dirupdate(msgs[0]);
    EXPECT_TRUE(update.full);
}

TEST(SummaryCacheNode, DeltaWithMismatchedSpecRejected) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    a.on_cache_insert("x");
    auto msgs = a.encode_pending_updates();
    ASSERT_FALSE(msgs.empty());
    auto update = decode_dirupdate(msgs[0]);
    ASSERT_TRUE(b.apply_sibling_update(update));
    // Same sibling suddenly advertises a different table size via delta.
    update.spec.table_bits /= 2;
    update.records.clear();
    EXPECT_FALSE(b.apply_sibling_update(update));
    EXPECT_EQ(b.updates_rejected(), 1u);
    // But a full update with the new spec re-creates the replica.
    update.full = true;
    update.bitmap_words.assign((update.spec.table_bits + 31) / 32, 0);
    EXPECT_TRUE(b.apply_sibling_update(update));
}

TEST(SummaryCacheNode, ForgetSiblingDropsReplica) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    a.on_cache_insert("x");
    sync(a, b);
    EXPECT_EQ(b.known_siblings(), 1u);
    b.forget_sibling(1);
    EXPECT_EQ(b.known_siblings(), 0u);
    EXPECT_FALSE(b.sibling_may_contain(1, "x"));
    EXPECT_EQ(b.sibling_filter(1), nullptr);
}

TEST(SummaryCacheNode, MultipleSiblingsProbedTogether) {
    SummaryCacheNode home(cfg(0));
    SummaryCacheNode s1(cfg(1));
    SummaryCacheNode s2(cfg(2));
    s1.on_cache_insert("common");
    s2.on_cache_insert("common");
    s2.on_cache_insert("only2");
    sync(s1, home);
    sync(s2, home);
    EXPECT_EQ(home.promising_siblings("common"), (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(home.promising_siblings("only2"), std::vector<NodeId>{2});
}

TEST(SummaryCacheNode, WireRoundTripPreservesFilterExactly) {
    // Full update must transfer the bit array verbatim.
    SummaryCacheNode a(cfg(1));
    for (int i = 0; i < 300; ++i) a.on_cache_insert("doc/" + std::to_string(i));
    SummaryCacheNode b(cfg(2));
    ASSERT_TRUE(b.apply_sibling_update(decode_dirupdate(a.encode_full_update())));
    const std::shared_ptr<const BloomFilter> replica = b.sibling_filter(1);
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->popcount(), a.local_filter().bits().popcount());
    EXPECT_EQ(*replica, a.local_filter().bits());
}

}  // namespace
}  // namespace sc
