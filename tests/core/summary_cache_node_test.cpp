#include "core/summary_cache_node.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sc {
namespace {

SummaryCacheNodeConfig cfg(NodeId id, std::uint64_t expected_docs = 1024) {
    SummaryCacheNodeConfig c;
    c.node_id = id;
    c.expected_docs = expected_docs;
    return c;
}

// Initialize `to`'s replica of `from` with a full-bitmap snapshot — the
// bootstrap handshake every stream starts with (a delta from a sender we
// have no sync point for is never applied, it answers need_bootstrap).
void bootstrap(SummaryCacheNode& from, SummaryCacheNode& to) {
    for (const auto& msg : from.encode_full_update_chunks()) {
        const auto r = to.apply_sibling_update(decode_dirupdate(msg));
        ASSERT_TRUE(r == SummaryApplyResult::applied || r == SummaryApplyResult::partial);
    }
    ASSERT_FALSE(to.sibling_needs_resync(from.id()));
}

// Deliver every pending update datagram from `from` to `to`. WHEN to
// encode is the DeltaBatcher's decision (tests/core/delta_batcher_test);
// the node encodes whatever churn is pending.
void sync(SummaryCacheNode& from, SummaryCacheNode& to) {
    for (const auto& msg : from.encode_pending_updates())
        ASSERT_EQ(to.apply_sibling_update(decode_dirupdate(msg)),
                  SummaryApplyResult::applied);
}

TEST(SummaryCacheNode, NoUpdatesWithoutDirectoryChurn) {
    SummaryCacheNode node(cfg(1));
    EXPECT_TRUE(node.encode_pending_updates().empty());
}

TEST(SummaryCacheNode, UpdateEmittedForPendingChanges) {
    SummaryCacheNode node(cfg(1));
    node.on_cache_insert("http://a/1");
    const auto msgs = node.encode_pending_updates();
    EXPECT_FALSE(msgs.empty());
    EXPECT_EQ(node.updates_sent(), msgs.size());
    // The delta log was consumed: nothing further is pending.
    EXPECT_TRUE(node.encode_pending_updates().empty());
}

TEST(SummaryCacheNode, DiscardDeltaDropsPendingChanges) {
    SummaryCacheNode node(cfg(1));
    node.on_cache_insert("http://a/1");
    node.discard_delta();  // pull mode: siblings fetch full digests instead
    EXPECT_TRUE(node.encode_pending_updates().empty());
}

TEST(SummaryCacheNode, SiblingLearnsViaDeltaUpdates) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);
    a.on_cache_insert("http://shared/doc");
    sync(a, b);
    EXPECT_TRUE(b.sibling_may_contain(1, "http://shared/doc"));
    EXPECT_EQ(b.promising_siblings("http://shared/doc"), std::vector<NodeId>{1});
    EXPECT_TRUE(b.promising_siblings("http://other/doc").empty());
}

TEST(SummaryCacheNode, FirstContactDeltaAsksForBootstrap) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    a.on_cache_insert("x");
    const auto msgs = a.encode_pending_updates();
    ASSERT_FALSE(msgs.empty());
    // No sync point for this sender: the delta must NOT fabricate a
    // replica (it would be missing every earlier document).
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(msgs[0])),
              SummaryApplyResult::need_bootstrap);
    EXPECT_EQ(b.known_siblings(), 0u);
    EXPECT_TRUE(b.sibling_needs_resync(1));
    EXPECT_EQ(b.siblings_awaiting_resync(), std::vector<NodeId>{1});
    // The bootstrap full then catches b up, including "x".
    bootstrap(a, b);
    EXPECT_TRUE(b.sibling_may_contain(1, "x"));
}

TEST(SummaryCacheNode, EraseEventuallyClearsSiblingView) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);
    a.on_cache_insert("u");
    sync(a, b);
    a.on_cache_erase("u");
    a.on_cache_insert("v");
    sync(a, b);
    EXPECT_FALSE(b.sibling_may_contain(1, "u"));
    EXPECT_TRUE(b.sibling_may_contain(1, "v"));
}

TEST(SummaryCacheNode, FullUpdateBootstrapsSibling) {
    SummaryCacheNode a(cfg(1));
    for (int i = 0; i < 50; ++i) a.on_cache_insert("d" + std::to_string(i));
    SummaryCacheNode b(cfg(2));
    ASSERT_EQ(b.apply_sibling_update(decode_dirupdate(a.encode_full_update())),
              SummaryApplyResult::applied);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(b.sibling_may_contain(1, "d" + std::to_string(i))) << i;
    EXPECT_EQ(b.known_siblings(), 1u);
    // The snapshot set the sync point: deltas resume in sequence.
    a.on_cache_insert("after-bootstrap");
    sync(a, b);
    EXPECT_TRUE(b.sibling_may_contain(1, "after-bootstrap"));
}

TEST(SummaryCacheNode, DuplicatedUpdateDeliveryIsIdempotent) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);
    a.on_cache_insert("x");
    const auto msgs = a.encode_pending_updates();
    ASSERT_EQ(msgs.size(), 1u);
    const auto update = decode_dirupdate(msgs[0]);
    ASSERT_EQ(b.apply_sibling_update(update), SummaryApplyResult::applied);
    // The duplicated datagram is recognized by its sequence number and
    // dropped — no double-apply, no quarantine.
    ASSERT_EQ(b.apply_sibling_update(update), SummaryApplyResult::duplicate);
    EXPECT_TRUE(b.sibling_may_contain(1, "x"));
    EXPECT_EQ(b.replica_divergences(), 0u);
    const std::shared_ptr<const BloomFilter> f = b.sibling_filter(1);
    ASSERT_NE(f, nullptr);
    EXPECT_LE(f->popcount(), 4u);  // absolute values: no double-set effects
}

TEST(SummaryCacheNode, LostUpdateQuarantinesUntilResync) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);
    a.on_cache_insert("first");
    (void)a.encode_pending_updates();  // "lost" in the network
    a.on_cache_insert("second");
    const auto msgs = a.encode_pending_updates();
    ASSERT_FALSE(msgs.empty());
    // The sequence gap is detected; the replica — silently missing
    // "first" — is dropped rather than left to mispredict forever.
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(msgs[0])),
              SummaryApplyResult::gap);
    EXPECT_EQ(b.known_siblings(), 0u);
    EXPECT_EQ(b.replica_divergences(), 1u);
    EXPECT_TRUE(b.sibling_needs_resync(1));
    // Further deltas while quarantined are withheld, not applied.
    a.on_cache_insert("third");
    for (const auto& m : a.encode_pending_updates())
        EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(m)),
                  SummaryApplyResult::need_resync);
    // The DIRREQ answer — a full snapshot — repairs everything at once.
    // (The initial bootstrap counted as the first resync: the metric
    // tallies every full-bitmap sync that established a replica.)
    ASSERT_EQ(b.apply_sibling_update(decode_dirupdate(a.encode_full_update())),
              SummaryApplyResult::applied);
    EXPECT_EQ(b.resyncs(), 2u);
    EXPECT_FALSE(b.sibling_needs_resync(1));
    EXPECT_TRUE(b.sibling_may_contain(1, "first"));
    EXPECT_TRUE(b.sibling_may_contain(1, "second"));
    EXPECT_TRUE(b.sibling_may_contain(1, "third"));
    // And the stream is back in sequence afterwards.
    a.on_cache_insert("fourth");
    sync(a, b);
    EXPECT_TRUE(b.sibling_may_contain(1, "fourth"));
}

TEST(SummaryCacheNode, SenderRebootQuarantinesOldStream) {
    SummaryCacheNode b(cfg(2));
    auto boot1 = cfg(1);
    boot1.boot_id = 7;
    {
        SummaryCacheNode a(boot1);
        a.on_cache_insert("old-world");
        bootstrap(a, b);
        EXPECT_TRUE(b.sibling_may_contain(1, "old-world"));
    }
    // Same node id restarts with a fresh boot id and an empty cache; its
    // first delta must not be spliced onto the dead incarnation's stream.
    auto boot2 = cfg(1);
    boot2.boot_id = 8;
    SummaryCacheNode a2(boot2);
    a2.on_cache_insert("new-world");
    const auto msgs = a2.encode_pending_updates();
    ASSERT_FALSE(msgs.empty());
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(msgs[0])),
              SummaryApplyResult::gap);
    EXPECT_EQ(b.known_siblings(), 0u);  // stale incarnation dropped
    EXPECT_TRUE(b.sibling_needs_resync(1));
    bootstrap(a2, b);
    EXPECT_TRUE(b.sibling_may_contain(1, "new-world"));
    EXPECT_FALSE(b.sibling_may_contain(1, "old-world"));
}

TEST(SummaryCacheNode, StaleFullSnapshotDropped) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);
    const auto old_full = a.encode_full_update();  // sync point S
    a.on_cache_insert("newer");
    sync(a, b);  // b's sync point advanced past S
    a.on_cache_insert("newest");
    sync(a, b);
    // The delayed snapshot arrives late: applying it would roll the
    // replica back behind deltas already applied.
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(old_full)),
              SummaryApplyResult::stale);
    EXPECT_TRUE(b.sibling_may_contain(1, "newer"));
    EXPECT_TRUE(b.sibling_may_contain(1, "newest"));
}

TEST(SummaryCacheNode, LargeDeltaIsChunked) {
    SummaryCacheNode a(cfg(1, /*expected_docs=*/200'000));  // flips rarely collide
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);  // large table: the snapshot itself ships chunked
    // ~40k inserts * up to 4 flips each >> kMaxRecordsPerUpdate.
    for (int i = 0; i < 40'000; ++i) a.on_cache_insert("doc" + std::to_string(i));
    const auto msgs = a.encode_pending_updates();
    EXPECT_GT(msgs.size(), 1u);
    for (const auto& m : msgs) EXPECT_LE(m.size(), kMaxIcpDatagram);
    // All chunks apply cleanly, in sequence.
    for (const auto& m : msgs)
        ASSERT_EQ(b.apply_sibling_update(decode_dirupdate(m)),
                  SummaryApplyResult::applied);
    EXPECT_TRUE(b.sibling_may_contain(1, "doc0"));
    EXPECT_TRUE(b.sibling_may_contain(1, "doc39999"));
}

TEST(SummaryCacheNode, SmallTablePrefersFullBitmap) {
    SummaryCacheNode a(cfg(1, /*expected_docs=*/64));  // full bitmap beats a large delta
    for (int i = 0; i < 500; ++i) a.on_cache_insert("k" + std::to_string(i));
    const auto msgs = a.encode_pending_updates();
    ASSERT_EQ(msgs.size(), 1u);
    const auto update = decode_dirupdate(msgs[0]);
    EXPECT_TRUE(update.full);
}

TEST(SummaryCacheNode, ElectedFullConsumesASequenceSlot) {
    // A threshold-elected full bitmap replaces delta datagrams, so losing
    // it must be detectable exactly like losing a delta: it consumes a
    // sequence number of its own.
    // 20 inserts flip ~80 bits of a 1024-bit table: past the crossover
    // (words = 32), so a full is elected, yet the filter stays sparse
    // enough that a later insert still produces delta records.
    SummaryCacheNode a(cfg(1, /*expected_docs=*/64));
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);
    for (int i = 0; i < 20; ++i) a.on_cache_insert("k" + std::to_string(i));
    const auto msgs = a.encode_pending_updates();
    ASSERT_EQ(msgs.size(), 1u);
    ASSERT_TRUE(decode_dirupdate(msgs[0]).full);  // election picked the bitmap
    // Scenario 1: the full arrives — applied, stream continues.
    ASSERT_EQ(b.apply_sibling_update(decode_dirupdate(msgs[0])),
              SummaryApplyResult::applied);
    a.on_cache_insert("after");
    sync(a, b);
    EXPECT_TRUE(b.sibling_may_contain(1, "after"));
    // Scenario 2 (fresh receiver c): the elected full is LOST; the next
    // delta must read as a gap, not splice silently over the hole.
    SummaryCacheNode a2(cfg(1, /*expected_docs=*/64));
    SummaryCacheNode c(cfg(3));
    bootstrap(a2, c);
    for (int i = 0; i < 20; ++i) a2.on_cache_insert("k" + std::to_string(i));
    const auto lost = a2.encode_pending_updates();
    ASSERT_EQ(lost.size(), 1u);
    ASSERT_TRUE(decode_dirupdate(lost[0]).full);  // ...and it is never delivered
    a2.on_cache_insert("after");
    const auto next = a2.encode_pending_updates();
    ASSERT_FALSE(next.empty());
    EXPECT_EQ(c.apply_sibling_update(decode_dirupdate(next[0])),
              SummaryApplyResult::gap);
}

TEST(SummaryCacheNode, DeltaWithMismatchedSpecRejected) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);
    a.on_cache_insert("x");
    auto msgs = a.encode_pending_updates();
    ASSERT_FALSE(msgs.empty());
    auto update = decode_dirupdate(msgs[0]);
    ASSERT_EQ(b.apply_sibling_update(update), SummaryApplyResult::applied);
    // Same sibling suddenly advertises a different table size via delta.
    update.spec.table_bits /= 2;
    update.records.clear();
    update.request_number += 1;  // in sequence — the spec is what is wrong
    EXPECT_EQ(b.apply_sibling_update(update), SummaryApplyResult::rejected);
    EXPECT_EQ(b.updates_rejected(), 1u);
    // But a full update with the new spec re-creates the replica.
    update.full = true;
    update.bitmap_words.assign((update.spec.table_bits + 31) / 32, 0);
    EXPECT_EQ(b.apply_sibling_update(update), SummaryApplyResult::applied);
}

TEST(SummaryCacheNode, ForgetSiblingDropsReplica) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(2));
    bootstrap(a, b);
    a.on_cache_insert("x");
    sync(a, b);
    EXPECT_EQ(b.known_siblings(), 1u);
    b.forget_sibling(1);
    EXPECT_EQ(b.known_siblings(), 0u);
    EXPECT_FALSE(b.sibling_may_contain(1, "x"));
    EXPECT_EQ(b.sibling_filter(1), nullptr);
    // The stream state went with it: a rejoin starts from bootstrap.
    EXPECT_TRUE(b.sibling_needs_resync(1));
}

TEST(SummaryCacheNode, MultipleSiblingsProbedTogether) {
    SummaryCacheNode home(cfg(0));
    SummaryCacheNode s1(cfg(1));
    SummaryCacheNode s2(cfg(2));
    bootstrap(s1, home);
    bootstrap(s2, home);
    s1.on_cache_insert("common");
    s2.on_cache_insert("common");
    s2.on_cache_insert("only2");
    sync(s1, home);
    sync(s2, home);
    EXPECT_EQ(home.promising_siblings("common"), (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(home.promising_siblings("only2"), std::vector<NodeId>{2});
}

TEST(SummaryCacheNode, WireRoundTripPreservesFilterExactly) {
    // Full update must transfer the bit array verbatim.
    SummaryCacheNode a(cfg(1));
    for (int i = 0; i < 300; ++i) a.on_cache_insert("doc/" + std::to_string(i));
    SummaryCacheNode b(cfg(2));
    ASSERT_EQ(b.apply_sibling_update(decode_dirupdate(a.encode_full_update())),
              SummaryApplyResult::applied);
    const std::shared_ptr<const BloomFilter> replica = b.sibling_filter(1);
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->popcount(), a.local_filter().bits().popcount());
    EXPECT_EQ(*replica, a.local_filter().bits());
}

}  // namespace
}  // namespace sc
