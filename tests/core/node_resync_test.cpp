// Resync machinery details: the delta-vs-full election is pinned at the
// wire-byte crossover (the bug where per-chunk framing was ignored picked
// deltas that were bigger on the wire than the bitmap), and chunked
// full-bitmap reassembly is exercised through loss, restart, and
// interleaving — the DIRREQ answer must survive the same network that
// mangled the deltas it repairs.
#include <gtest/gtest.h>

#include <string>

#include "core/summary_cache_node.hpp"
#include "icp/icp_message.hpp"

namespace sc {
namespace {

SummaryCacheNodeConfig cfg(NodeId id, std::uint64_t expected_docs = 1024) {
    SummaryCacheNodeConfig c;
    c.node_id = id;
    c.expected_docs = expected_docs;
    return c;
}

// --- election arithmetic ---------------------------------------------------

// Framing per chunk: 20-byte ICP header + 12 bytes of hash-spec + count.
constexpr std::size_t kChunkOverhead = kIcpHeaderBytes + 12;

// The helpers the election calls are constexpr: pin the arithmetic at
// compile time so a framing regression cannot even build.
static_assert(dirupdate_delta_wire_bytes(0) == kChunkOverhead);
static_assert(dirupdate_delta_wire_bytes(1) == kChunkOverhead + 4);
static_assert(dirupdate_delta_wire_bytes(kMaxRecordsPerUpdate) ==
              kChunkOverhead + 4 * kMaxRecordsPerUpdate);
// One record past a chunk boundary pays a whole extra chunk of framing.
static_assert(dirupdate_delta_wire_bytes(kMaxRecordsPerUpdate + 1) ==
              2 * kChunkOverhead + 4 * (kMaxRecordsPerUpdate + 1));
static_assert(dirupdate_full_wire_bytes(HashSpec{4, 32, 32}) == kChunkOverhead + 4);
static_assert(dirupdate_full_wire_bytes(HashSpec{4, 32, 33}) == kChunkOverhead + 8);

TEST(NodeResync, WireByteHelpersMatchEncodedBytes) {
    // The helpers must agree with what encode_* actually emits, or the
    // election optimizes the wrong quantity.
    IcpDirUpdate delta;
    delta.spec = HashSpec{4, 32, 65536};
    delta.records = {1, 2, 3};
    EXPECT_EQ(encode_dirupdate(delta).size(), dirupdate_delta_wire_bytes(3));

    IcpDirUpdate full;
    full.spec = HashSpec{4, 32, 1024};
    full.full = true;
    full.bitmap_words.assign(32, 0);
    EXPECT_EQ(encode_dirupdate(full).size(), dirupdate_full_wire_bytes(full.spec));
}

TEST(NodeResync, ElectionFlipsAtTheWireCrossover) {
    // Starting from an empty filter, every pending record is a fresh 0->1
    // flip, so pending records == the local filter's popcount. Drive churn
    // until the popcount crosses the bitmap's word count: below it a delta
    // must be elected (strictly cheaper or tied on the wire), above it the
    // full bitmap must win.
    const std::size_t words =
        (SummaryCacheNode(cfg(0, 64)).local_filter().bits().spec().table_bits + 31) / 32;

    // Below the crossover: a handful of flips, popcount well under words.
    SummaryCacheNode low(cfg(1, 64));
    low.on_cache_insert("one-doc");
    ASSERT_LE(low.local_filter().bits().popcount(), words);
    const auto low_msgs = low.encode_pending_updates();
    ASSERT_EQ(low_msgs.size(), 1u);
    EXPECT_FALSE(decode_dirupdate(low_msgs[0]).full);

    // Above it: keep inserting until the popcount passes the word count;
    // now delta records alone outweigh the whole bitmap, before framing.
    SummaryCacheNode high(cfg(1, 64));
    for (int i = 0; high.local_filter().bits().popcount() <= words; ++i) {
        ASSERT_LT(i, 10'000);
        high.on_cache_insert("url" + std::to_string(i));
    }
    const auto high_msgs = high.encode_pending_updates();
    ASSERT_EQ(high_msgs.size(), 1u);
    const auto full = decode_dirupdate(high_msgs[0]);
    EXPECT_TRUE(full.full);
    EXPECT_EQ(high_msgs[0].size(), dirupdate_full_wire_bytes(full.spec));
}

TEST(NodeResync, ElectionArithmeticChargesChunkFraming) {
    // Regression pin for the election bug: payload-only accounting
    // (records * 4 vs words * 4) ignores that every chunk repays the
    // 32-byte header+spec framing. The helpers charge it.
    const HashSpec spec{4, 32, 1024};  // 32 words
    EXPECT_EQ(dirupdate_delta_wire_bytes(32), dirupdate_full_wire_bytes(spec));
    // A delta spanning two chunks pays two framings, not one.
    const std::size_t two_chunks = kMaxRecordsPerUpdate + 1;
    EXPECT_EQ(dirupdate_delta_wire_bytes(two_chunks),
              2 * kChunkOverhead + 4 * two_chunks);
    // And a bitmap spanning two chunks likewise.
    const HashSpec big{4, 32,
                       static_cast<std::uint32_t>(32 * (kMaxWordsPerFullChunk + 1))};
    EXPECT_EQ(dirupdate_full_wire_bytes(big),
              2 * kChunkOverhead + 4 * (kMaxWordsPerFullChunk + 1));
}

// --- chunked full-bitmap reassembly ---------------------------------------

// A table big enough that the full bitmap spans several datagrams.
constexpr std::uint64_t kBigDocs = 200'000;

TEST(NodeResync, ChunkedFullReassemblesInOrder) {
    SummaryCacheNode a(cfg(1, kBigDocs));
    for (int i = 0; i < 1000; ++i) a.on_cache_insert("d" + std::to_string(i));
    SummaryCacheNode b(cfg(2));
    const auto chunks = a.encode_full_update_chunks();
    ASSERT_GT(chunks.size(), 1u);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        const auto r = b.apply_sibling_update(decode_dirupdate(chunks[i]));
        if (i + 1 < chunks.size()) {
            EXPECT_EQ(r, SummaryApplyResult::partial) << i;
            EXPECT_EQ(b.known_siblings(), 0u);  // not visible until committed
        } else {
            EXPECT_EQ(r, SummaryApplyResult::applied);
        }
    }
    EXPECT_EQ(b.known_siblings(), 1u);
    EXPECT_TRUE(b.sibling_may_contain(1, "d0"));
    EXPECT_TRUE(b.sibling_may_contain(1, "d999"));
    EXPECT_FALSE(b.sibling_needs_resync(1));
}

TEST(NodeResync, LostMiddleChunkRecoversOnRestart) {
    SummaryCacheNode a(cfg(1, kBigDocs));
    for (int i = 0; i < 1000; ++i) a.on_cache_insert("d" + std::to_string(i));
    SummaryCacheNode b(cfg(2));
    const auto chunks = a.encode_full_update_chunks();
    ASSERT_GE(chunks.size(), 2u);
    // First transfer loses its middle chunk: the tail chunk no longer
    // continues the reassembly and resets it — reported as partial, and
    // the sibling still reads as needing resync.
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(chunks[0])),
              SummaryApplyResult::partial);
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(chunks.back())),
              SummaryApplyResult::partial);
    EXPECT_EQ(b.known_siblings(), 0u);
    EXPECT_TRUE(b.sibling_needs_resync(1));
    // The re-requested transfer restarts at offset 0 and completes.
    for (const auto& c : a.encode_full_update_chunks()) {
        const auto r = b.apply_sibling_update(decode_dirupdate(c));
        EXPECT_TRUE(r == SummaryApplyResult::partial || r == SummaryApplyResult::applied);
    }
    EXPECT_EQ(b.known_siblings(), 1u);
    EXPECT_TRUE(b.sibling_may_contain(1, "d999"));
}

TEST(NodeResync, InterleavedTransfersResolveToTheNewerOne) {
    // Two overlapping transfers (a lost answer re-served mid-flight): any
    // offset-0 chunk restarts reassembly, so the SECOND transfer's chunks
    // win and the stale first transfer cannot commit a blended bitmap.
    SummaryCacheNode a(cfg(1, kBigDocs));
    for (int i = 0; i < 500; ++i) a.on_cache_insert("old" + std::to_string(i));
    const auto first = a.encode_full_update_chunks();
    for (int i = 0; i < 500; ++i) a.on_cache_insert("new" + std::to_string(i));
    (void)a.encode_pending_updates();  // drain churn into the filter state
    const auto second = a.encode_full_update_chunks();
    ASSERT_GE(first.size(), 2u);

    SummaryCacheNode b(cfg(2));
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(first[0])),
              SummaryApplyResult::partial);
    // Second transfer begins before the first finished.
    for (const auto& c : second) {
        const auto r = b.apply_sibling_update(decode_dirupdate(c));
        EXPECT_TRUE(r == SummaryApplyResult::partial || r == SummaryApplyResult::applied);
    }
    EXPECT_EQ(b.known_siblings(), 1u);
    EXPECT_TRUE(b.sibling_may_contain(1, "new499"));
    EXPECT_TRUE(b.sibling_may_contain(1, "old499"));
}

TEST(NodeResync, SiblingsAwaitingResyncListsQuarantinedPeers) {
    SummaryCacheNode b(cfg(9));
    EXPECT_TRUE(b.siblings_awaiting_resync().empty());
    // Two senders: one healthy, one whose delta arrives before any sync.
    SummaryCacheNode healthy(cfg(1));
    for (const auto& c : healthy.encode_full_update_chunks())
        (void)b.apply_sibling_update(decode_dirupdate(c));
    SummaryCacheNode unsynced(cfg(2));
    unsynced.on_cache_insert("x");
    const auto msgs = unsynced.encode_pending_updates();
    ASSERT_FALSE(msgs.empty());
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(msgs[0])),
              SummaryApplyResult::need_bootstrap);
    const auto waiting = b.siblings_awaiting_resync();
    ASSERT_EQ(waiting.size(), 1u);
    EXPECT_EQ(waiting[0], 2u);
    EXPECT_FALSE(b.sibling_needs_resync(1));
}

// --- sequence heartbeat (tail-loss repair) ---------------------------------

TEST(NodeResync, HeartbeatDetectsTailLoss) {
    // Gap detection needs a later datagram: if the LAST delta before a
    // quiet period is lost, the receiver stays "synced" but stale forever.
    // The keepalive-paced heartbeat is that later datagram.
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(9));
    for (const auto& c : a.encode_full_update_chunks())
        (void)b.apply_sibling_update(decode_dirupdate(c));
    ASSERT_FALSE(b.sibling_needs_resync(1));

    // The tail delta vanishes on the wire; b has no way to know yet.
    a.on_cache_insert("lost-doc");
    ASSERT_FALSE(a.encode_pending_updates().empty());
    EXPECT_FALSE(b.sibling_may_contain(1, "lost-doc"));
    EXPECT_FALSE(b.sibling_needs_resync(1));

    // The heartbeat advertises the sequence past the lost delta: gap.
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(a.encode_seq_heartbeat())),
              SummaryApplyResult::gap);
    EXPECT_TRUE(b.sibling_needs_resync(1));

    // The resulting DIRREQ resync repairs the replica.
    for (const auto& c : a.encode_full_update_chunks())
        (void)b.apply_sibling_update(decode_dirupdate(c));
    EXPECT_FALSE(b.sibling_needs_resync(1));
    EXPECT_TRUE(b.sibling_may_contain(1, "lost-doc"));
}

TEST(NodeResync, HeartbeatInSyncIsANoOp) {
    SummaryCacheNode a(cfg(1));
    SummaryCacheNode b(cfg(9));
    for (const auto& c : a.encode_full_update_chunks())
        (void)b.apply_sibling_update(decode_dirupdate(c));

    // In-sync heartbeats are dropped without consuming a sequence...
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(a.encode_seq_heartbeat())),
              SummaryApplyResult::duplicate);
    EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(a.encode_seq_heartbeat())),
              SummaryApplyResult::duplicate);
    EXPECT_FALSE(b.sibling_needs_resync(1));

    // ...so the next real delta still lands exactly in sequence.
    a.on_cache_insert("after-heartbeat");
    for (const auto& m : a.encode_pending_updates())
        EXPECT_EQ(b.apply_sibling_update(decode_dirupdate(m)),
                  SummaryApplyResult::applied);
    EXPECT_TRUE(b.sibling_may_contain(1, "after-heartbeat"));
}

}  // namespace
}  // namespace sc
