// Concurrency contract of the SummaryCacheNode replica table: readers
// (promising_siblings / sibling_may_contain / sibling_filter) are
// lock-free against writers applying updates — each sibling's filter is
// an immutable snapshot behind an atomically published table, so a probe
// sees either the old snapshot or the new one, never a half-applied
// filter. Run under TSan in CI; the snapshot-atomicity test catches torn
// publication in any build.
#include "core/summary_cache_node.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace sc {
namespace {

SummaryCacheNodeConfig cfg(NodeId id, std::uint64_t expected_docs = 1024) {
    SummaryCacheNodeConfig c;
    c.node_id = id;
    c.expected_docs = expected_docs;
    return c;
}

TEST(NodeReplicaConcurrency, ProbesRaceDeltaApplicationSafely) {
    SummaryCacheNode home(cfg(0));
    SummaryCacheNode sibling(cfg(1));
    // Bootstrap so deltas apply against a known replica from step one.
    ASSERT_EQ(home.apply_sibling_update(decode_dirupdate(sibling.encode_full_update())),
              SummaryApplyResult::applied);

    constexpr int kDocs = 2000;
    std::atomic<bool> done{false};
    std::thread writer([&] {
        // A live churn stream: insert, flush the delta, apply. The sibling
        // node itself is confined to this thread; only apply_sibling_update
        // touches shared state.
        for (int i = 0; i < kDocs; ++i) {
            sibling.on_cache_insert("doc" + std::to_string(i));
            for (const auto& msg : sibling.encode_pending_updates())
                ASSERT_EQ(home.apply_sibling_update(decode_dirupdate(msg)),
                          SummaryApplyResult::applied);
        }
        done.store(true, std::memory_order_release);
    });

    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
        readers.emplace_back([&home, &done, r] {
            std::uint64_t sink = 0;
            // Probe at least once even if the writer finishes before this
            // thread is first scheduled (single-core schedulers do that),
            // so the sink check below is deterministic.
            for (int i = 0; i == 0 || !done.load(std::memory_order_acquire); ++i) {
                const std::string url = "doc" + std::to_string((i * 7 + r) % kDocs);
                const auto promising = home.promising_siblings(url);
                for (const NodeId id : promising) EXPECT_EQ(id, 1u);
                sink += home.sibling_may_contain(1, url) ? 1 : 0;
                if (const auto f = home.sibling_filter(1)) sink += f->popcount();
                sink += home.known_siblings();
            }
            EXPECT_GT(sink, 0u);
        });
    }
    writer.join();
    for (auto& th : readers) th.join();

    // Every applied delta is visible once the writer is done.
    for (int i = 0; i < kDocs; ++i)
        EXPECT_TRUE(home.sibling_may_contain(1, "doc" + std::to_string(i))) << i;
}

TEST(NodeReplicaConcurrency, ProbesRaceForgetAndRebootstrapSafely) {
    SummaryCacheNode home(cfg(0));
    SummaryCacheNode sibling(cfg(1));
    sibling.on_cache_insert("stable");
    const auto full = decode_dirupdate(sibling.encode_full_update());

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        // Liveness churn: the sibling keeps dying and coming back.
        for (int i = 0; i < 2000; ++i) {
            home.forget_sibling(1);
            // forget erased the stream, so every re-apply is a bootstrap.
            ASSERT_EQ(home.apply_sibling_update(full), SummaryApplyResult::applied);
        }
        stop.store(true, std::memory_order_release);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
        readers.emplace_back([&home, &stop] {
            while (!stop.load(std::memory_order_acquire)) {
                // Known or forgotten are both fine; a torn table is not.
                const auto promising = home.promising_siblings("stable");
                EXPECT_LE(promising.size(), 1u);
                EXPECT_LE(home.known_siblings(), 1u);
            }
        });
    }
    writer.join();
    for (auto& th : readers) th.join();
    EXPECT_TRUE(home.sibling_may_contain(1, "stable"));
}

TEST(NodeReplicaConcurrency, SnapshotsAreNeverBlended) {
    // Two full updates with disjoint contents swapped in a tight loop: any
    // filter handle a reader grabs must answer exactly like one of the two
    // source filters — seeing a mix means publication tore.
    SummaryCacheNode odd(cfg(1));
    SummaryCacheNode even(cfg(1));
    for (int i = 0; i < 64; ++i) {
        odd.on_cache_insert("odd" + std::to_string(i));
        even.on_cache_insert("even" + std::to_string(i));
    }
    const auto odd_full = decode_dirupdate(odd.encode_full_update());
    const auto even_full = decode_dirupdate(even.encode_full_update());
    // Probe keys that distinguish the two filters with certainty (skip
    // Bloom false positives up front, single-threaded).
    std::vector<std::string> odd_keys, even_keys;
    for (int i = 0; i < 64 && (odd_keys.size() < 8 || even_keys.size() < 8); ++i) {
        const std::string o = "odd" + std::to_string(i);
        const std::string e = "even" + std::to_string(i);
        if (!even.local_filter().bits().may_contain(o)) odd_keys.push_back(o);
        if (!odd.local_filter().bits().may_contain(e)) even_keys.push_back(e);
    }
    ASSERT_FALSE(odd_keys.empty());
    ASSERT_FALSE(even_keys.empty());

    SummaryCacheNode home(cfg(0));
    ASSERT_EQ(home.apply_sibling_update(odd_full), SummaryApplyResult::applied);
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        // The two snapshots carry different boot ids (distinct node
        // instances), so neither ever reads as stale against the other.
        for (int i = 0; i < 4000; ++i)
            ASSERT_EQ(home.apply_sibling_update((i % 2 != 0) ? even_full : odd_full),
                      SummaryApplyResult::applied);
        stop.store(true, std::memory_order_release);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                const auto f = home.sibling_filter(1);
                ASSERT_NE(f, nullptr);
                const bool saw_odd = f->may_contain(odd_keys[0]);
                // A snapshot is all-odd or all-even, never a blend.
                for (const auto& k : odd_keys) EXPECT_EQ(f->may_contain(k), saw_odd) << k;
                for (const auto& k : even_keys) EXPECT_EQ(f->may_contain(k), !saw_odd) << k;
            }
        });
    }
    writer.join();
    for (auto& th : readers) th.join();
}

}  // namespace
}  // namespace sc
