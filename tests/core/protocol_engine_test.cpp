// ProtocolEngine: the transport-free decision pipeline shared by the
// trace simulators and the live MiniProxy.
#include "core/protocol_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/lru_cache.hpp"
#include "core/peer_directory.hpp"
#include "summary/bloom_summary.hpp"

namespace sc::core {
namespace {

ProtocolEngineConfig cfg(std::uint32_t id, double threshold = 0.0) {
    return ProtocolEngineConfig{id, DeltaBatcherConfig{threshold, 0.0, 0}};
}

TEST(ProtocolEngine, SequentialRoundStopsAtFirstFresh) {
    LruCache cache(LruCacheConfig{1 << 20});
    ProtocolEngine engine(cfg(0), cache, nullptr, nullptr);
    std::vector<std::uint32_t> asked;
    const auto round = engine.run_sequential_round(
        {3, 1, 4}, [&](std::uint32_t peer) {
            asked.push_back(peer);
            return peer == 1 ? PeerAnswer::fresh : PeerAnswer::absent;
        });
    ASSERT_TRUE(round.winner.has_value());
    EXPECT_EQ(*round.winner, 1u);
    EXPECT_EQ(round.queries, 2u);          // 3 (absent), then 1 (fresh); 4 never asked
    EXPECT_EQ(round.wasted_queries, 1u);   // the lie about peer 3
    EXPECT_FALSE(round.stale_ended);
    EXPECT_EQ(asked, (std::vector<std::uint32_t>{3, 1}));
}

TEST(ProtocolEngine, SequentialRoundStaleEndsRound) {
    LruCache cache(LruCacheConfig{1 << 20});
    ProtocolEngine engine(cfg(0), cache, nullptr, nullptr);
    const auto round = engine.run_sequential_round(
        {1, 2, 3}, [](std::uint32_t peer) {
            return peer == 2 ? PeerAnswer::stale : PeerAnswer::absent;
        });
    EXPECT_FALSE(round.winner.has_value());
    EXPECT_TRUE(round.stale_ended);  // the document comes from the origin
    EXPECT_EQ(round.queries, 2u);    // peer 3 is never asked
    EXPECT_EQ(round.wasted_queries, 1u);
}

TEST(ProtocolEngine, MulticastRoundQueriesEveryCandidate) {
    LruCache cache(LruCacheConfig{1 << 20});
    ProtocolEngine engine(cfg(0), cache, nullptr, nullptr);
    const auto round = engine.run_multicast_round(
        {1, 2, 3}, [](std::uint32_t peer) {
            return peer == 2 ? PeerAnswer::fresh : PeerAnswer::absent;
        });
    ASSERT_TRUE(round.winner.has_value());
    EXPECT_EQ(*round.winner, 2u);
    // Classic ICP pays for every candidate regardless of the outcome.
    EXPECT_EQ(round.queries, 3u);
}

TEST(ProtocolEngine, AdmitCountsTowardUpdateThreshold) {
    LruCache cache(LruCacheConfig{1 << 20});
    ProtocolEngine engine(cfg(0, /*threshold=*/0.01), cache, nullptr, nullptr);
    EXPECT_TRUE(engine.admit("http://a/1", 100, 1));
    EXPECT_EQ(engine.batcher().unreflected(), 1u);
    // An oversized document is rejected and must not count.
    EXPECT_FALSE(engine.admit("http://a/big", 2u << 20, 1));
    EXPECT_EQ(engine.batcher().unreflected(), 1u);
    EXPECT_EQ(engine.lookup_local("http://a/1", 1), CacheStore::Lookup::hit);
}

TEST(ProtocolEngine, ProbeReturnsPromisingPeersInOrder) {
    LruCache cache(LruCacheConfig{1 << 20});
    BloomSummary own(64, {});
    BloomSummary peer_a(64, {});
    BloomSummary peer_b(64, {});
    peer_a.on_insert("http://shared/doc");
    peer_a.publish();
    peer_b.on_insert("http://shared/doc");
    peer_b.publish();
    SummaryPeerView peers;
    peers.set_prober(&own);
    peers.add_peer(7, &peer_a);
    peers.add_peer(2, &peer_b);
    ProtocolEngine engine(cfg(0), cache, &own, &peers);
    // Probe order is registration order — it IS the sequential query order.
    EXPECT_EQ(engine.probe("http://shared/doc"), (std::vector<std::uint32_t>{7, 2}));
    EXPECT_TRUE(engine.probe("http://never.seen/x").empty());
}

TEST(ProtocolEngine, MaybePublishElectsOnePublisherPerCrossing) {
    LruCache cache(LruCacheConfig{1 << 20});
    BloomSummary summary(64, {});
    cache.set_insert_hook([&summary](const LruCache::Entry& e) { summary.on_insert(e.url); });
    ProtocolEngine engine(cfg(1, /*threshold=*/0.0), cache, &summary, nullptr);

    EXPECT_FALSE(engine.maybe_publish(0.0).has_value());  // nothing pending
    ASSERT_TRUE(engine.admit("http://a/1", 100, 1));
    const auto pub = engine.maybe_publish(0.0);
    ASSERT_TRUE(pub.has_value());
    EXPECT_GT(pub->wire_bytes, 0u);
    EXPECT_EQ(pub->batch_size, 1u);
    EXPECT_TRUE(summary.published_may_contain("http://a/1"));
    // The crossing was consumed: no second publish until the next admit.
    EXPECT_FALSE(engine.maybe_publish(0.0).has_value());
}

TEST(ProtocolEngine, MaybeFlushRunsCallbackOnlyWhenElected) {
    LruCache cache(LruCacheConfig{1 << 20});
    ProtocolEngine engine(cfg(1, /*threshold=*/0.0), cache, nullptr, nullptr);
    int flushes = 0;
    const auto flush = [&flushes] { return ++flushes; };
    EXPECT_FALSE(engine.maybe_flush(0.0, flush).has_value());
    EXPECT_EQ(flushes, 0);
    ASSERT_TRUE(engine.admit("http://a/1", 100, 1));
    ASSERT_TRUE(engine.admit("http://a/2", 100, 1));
    const auto result = engine.maybe_flush(0.0, flush);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->first, 1);        // the callback's own return value
    EXPECT_EQ(result->second, 2u);      // both admits coalesced into one flush
    EXPECT_FALSE(engine.maybe_flush(0.0, flush).has_value());
}

}  // namespace
}  // namespace sc::core
