// EventBackend contract tests, run against BOTH implementations: the two
// backends must be behaviorally identical (level-triggered readiness, tag
// round-tripping, deadline semantics) so MiniProxy can switch between them
// with a flag and nothing else changes.
#include "net/event_backend.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <vector>

namespace sc::net {
namespace {

using namespace std::chrono_literals;

std::vector<EventBackendKind> kinds_under_test() {
    std::vector<EventBackendKind> kinds = {EventBackendKind::poll};
#ifdef __linux__
    kinds.push_back(EventBackendKind::epoll);
#endif
    return kinds;
}

struct Pipe {
    int fds[2] = {-1, -1};
    Pipe() {
        EXPECT_EQ(::pipe(fds), 0);
        ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
        ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    }
    ~Pipe() {
        if (fds[0] >= 0) ::close(fds[0]);
        if (fds[1] >= 0) ::close(fds[1]);
    }
    [[nodiscard]] int rd() const { return fds[0]; }
    [[nodiscard]] int wr() const { return fds[1]; }
    void write_byte() const { EXPECT_EQ(::write(wr(), "x", 1), 1); }
    void drain() const {
        char buf[64];
        while (::read(rd(), buf, sizeof buf) > 0) {}
    }
};

class EventBackendContract : public ::testing::TestWithParam<EventBackendKind> {
protected:
    std::unique_ptr<EventBackend> backend_ = make_event_backend(GetParam());
    std::vector<ReadyEvent> ready_;

    std::size_t wait_until(std::chrono::milliseconds budget) {
        ready_.clear();
        return backend_->wait(std::chrono::steady_clock::now() + budget, ready_);
    }
};

TEST_P(EventBackendContract, NameMatchesKind) {
    EXPECT_STREQ(backend_->name(), event_backend_kind_name(GetParam()));
}

TEST_P(EventBackendContract, BookkeepingTracksAddAndRemove) {
    Pipe p;
    EXPECT_EQ(backend_->registered(), 0u);
    EXPECT_FALSE(backend_->contains(p.rd()));
    backend_->add(p.rd(), /*read=*/true, /*write=*/false, /*tag=*/7);
    EXPECT_TRUE(backend_->contains(p.rd()));
    EXPECT_EQ(backend_->registered(), 1u);
    backend_->add(p.wr(), /*read=*/false, /*write=*/true, /*tag=*/8);
    EXPECT_EQ(backend_->registered(), 2u);
    backend_->remove(p.rd());
    EXPECT_FALSE(backend_->contains(p.rd()));
    EXPECT_EQ(backend_->registered(), 1u);
    backend_->remove(p.wr());
    EXPECT_EQ(backend_->registered(), 0u);
}

TEST_P(EventBackendContract, ReadableFdReportsItsTag) {
    Pipe p;
    backend_->add(p.rd(), true, false, /*tag=*/0xdeadbeefULL);
    p.write_byte();
    ASSERT_EQ(wait_until(1000ms), 1u);
    EXPECT_EQ(ready_[0].tag, 0xdeadbeefULL);
    EXPECT_TRUE(ready_[0].readable);
    EXPECT_FALSE(ready_[0].writable);
}

TEST_P(EventBackendContract, LevelTriggeredUntilDrained) {
    // Bytes left in the kernel must re-surface on the next wait — callers
    // rely on this to process one request per wakeup without losing data.
    Pipe p;
    backend_->add(p.rd(), true, false, 1);
    p.write_byte();
    ASSERT_EQ(wait_until(1000ms), 1u);
    ASSERT_EQ(wait_until(1000ms), 1u) << "level-triggered readiness lost";
    p.drain();
    EXPECT_EQ(wait_until(20ms), 0u);
}

TEST_P(EventBackendContract, WritableInterestFiresOnEmptyPipe) {
    Pipe p;
    backend_->add(p.wr(), false, true, 2);
    ASSERT_EQ(wait_until(1000ms), 1u);
    EXPECT_TRUE(ready_[0].writable);
    EXPECT_FALSE(ready_[0].readable);
}

TEST_P(EventBackendContract, ModifySwitchesInterestAndTag) {
    Pipe p;
    backend_->add(p.rd(), /*read=*/false, /*write=*/false, 3);
    p.write_byte();
    // No interest registered: nothing may fire even though bytes wait.
    EXPECT_EQ(wait_until(20ms), 0u);
    backend_->modify(p.rd(), /*read=*/true, /*write=*/false, /*tag=*/42);
    ASSERT_EQ(wait_until(1000ms), 1u);
    EXPECT_EQ(ready_[0].tag, 42u);
}

TEST_P(EventBackendContract, HangupIsReportedNotFatal) {
    Pipe p;
    backend_->add(p.rd(), true, false, 4);
    ::close(p.fds[1]);
    p.fds[1] = -1;
    ASSERT_EQ(wait_until(1000ms), 1u);
    EXPECT_TRUE(ready_[0].hangup || ready_[0].readable);
}

TEST_P(EventBackendContract, PastDeadlineReturnsImmediately) {
    Pipe p;
    backend_->add(p.rd(), true, false, 5);
    ready_.clear();
    const auto start = std::chrono::steady_clock::now();
    const auto n = backend_->wait(start - 1s, ready_);
    EXPECT_EQ(n, 0u);
    EXPECT_LT(std::chrono::steady_clock::now() - start, 500ms);
}

TEST_P(EventBackendContract, DeadlineIsHonoredNotRoundedDown) {
    // The deadline→timeout conversion must round UP: rounding down turns a
    // 4.9ms residue into a zero-timeout spin (the old 50ms tick in disguise).
    Pipe p;
    backend_->add(p.rd(), true, false, 6);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(wait_until(30ms), 0u);
    EXPECT_GE(std::chrono::steady_clock::now() - start, 29ms);
}

TEST_P(EventBackendContract, RemovedFdNeverFires) {
    Pipe p;
    backend_->add(p.rd(), true, false, 7);
    p.write_byte();
    backend_->remove(p.rd());
    EXPECT_EQ(wait_until(20ms), 0u);
}

TEST_P(EventBackendContract, ManyFdsOnlyReadyOnesReported) {
    constexpr int kPipes = 32;
    std::vector<Pipe> pipes(kPipes);
    for (int i = 0; i < kPipes; ++i)
        backend_->add(pipes[i].rd(), true, false, static_cast<std::uint64_t>(i));
    pipes[3].write_byte();
    pipes[17].write_byte();
    ASSERT_EQ(wait_until(1000ms), 2u);
    std::uint64_t seen = 0;
    for (const auto& ev : ready_) seen |= 1ull << ev.tag;
    EXPECT_EQ(seen, (1ull << 3) | (1ull << 17));
    for (auto& p : pipes) backend_->remove(p.rd());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EventBackendContract, ::testing::ValuesIn(kinds_under_test()),
    [](const ::testing::TestParamInfo<EventBackendKind>& info) {
        return event_backend_kind_name(info.param);
    });

// --- kind parsing / resolution --------------------------------------------

TEST(EventBackendKindTest, ParseRoundTrips) {
    EXPECT_EQ(parse_event_backend_kind("poll"), EventBackendKind::poll);
    EXPECT_EQ(parse_event_backend_kind("epoll"), EventBackendKind::epoll);
    EXPECT_EQ(parse_event_backend_kind("kqueue"), std::nullopt);
    EXPECT_EQ(parse_event_backend_kind(""), std::nullopt);
    for (const auto kind : {EventBackendKind::poll, EventBackendKind::epoll})
        EXPECT_EQ(parse_event_backend_kind(event_backend_kind_name(kind)), kind);
}

TEST(EventBackendKindTest, ResolutionPrefersExplicitThenEnvThenDefault) {
    ::setenv("SC_EVENT_BACKEND", "poll", 1);
    EXPECT_EQ(resolve_event_backend_kind(EventBackendKind::epoll),
              EventBackendKind::epoll)
        << "explicit config must beat the env var";
    EXPECT_EQ(resolve_event_backend_kind(std::nullopt), EventBackendKind::poll);
    ::setenv("SC_EVENT_BACKEND", "not-a-backend", 1);
    EXPECT_EQ(resolve_event_backend_kind(std::nullopt),
              default_event_backend_kind())
        << "an unparseable env value falls through to the platform default";
    ::unsetenv("SC_EVENT_BACKEND");
    EXPECT_EQ(resolve_event_backend_kind(std::nullopt),
              default_event_backend_kind());
}

#ifdef __linux__
TEST(EventBackendKindTest, LinuxDefaultsToEpoll) {
    EXPECT_EQ(default_event_backend_kind(), EventBackendKind::epoll);
}
#endif

}  // namespace
}  // namespace sc::net
