#include "icp/icp_message.hpp"

#include <gtest/gtest.h>

#include "bloom/delta_log.hpp"

namespace sc {
namespace {

TEST(IcpMessage, QueryRoundTrip) {
    IcpQuery q;
    q.request_number = 42;
    q.sender_host = 0x0a000001;
    q.requester_host = 0x0a000002;
    q.url = "http://www.cs.wisc.edu/~cao/papers/summarycache.html";
    const auto wire = encode_query(q);
    EXPECT_EQ(wire.size(), kIcpHeaderBytes + 4 + q.url.size() + 1);
    EXPECT_EQ(decode_query(wire), q);
}

TEST(IcpMessage, HeaderFieldsOnTheWire) {
    IcpQuery q;
    q.request_number = 0x01020304;
    q.sender_host = 0x7f000001;
    q.url = "u";
    const auto wire = encode_query(q);
    EXPECT_EQ(wire[0], static_cast<std::uint8_t>(IcpOpcode::query));
    EXPECT_EQ(wire[1], kIcpVersion);
    // length (big-endian) must equal the datagram size
    EXPECT_EQ((wire[2] << 8) | wire[3], static_cast<int>(wire.size()));
    EXPECT_EQ(wire[4], 0x01);
    EXPECT_EQ(wire[7], 0x04);
}

TEST(IcpMessage, ReplyRoundTripAllOpcodes) {
    for (IcpOpcode op : {IcpOpcode::hit, IcpOpcode::miss, IcpOpcode::miss_nofetch,
                         IcpOpcode::err, IcpOpcode::denied, IcpOpcode::secho,
                         IcpOpcode::decho}) {
        IcpReply r;
        r.opcode = op;
        r.request_number = 7;
        r.sender_host = 3;
        r.url = "http://a/b";
        EXPECT_EQ(decode_reply(encode_reply(r)), r) << icp_opcode_name(op);
    }
}

TEST(IcpMessage, DirUpdateDeltaRoundTrip) {
    IcpDirUpdate u;
    u.request_number = 9;
    u.sender_host = 0x01;
    u.boot_id = 0xb001;  // decode rejects boot id 0 (reserved: "not configured")
    u.spec = HashSpec{4, 32, 65536};
    u.records = {encode_bit_flip({100, true}), encode_bit_flip({200, false}),
                 encode_bit_flip({65535, true})};
    const auto wire = encode_dirupdate(u);
    // 20-byte ICP header + 12-byte summary header + 4 bytes per record.
    EXPECT_EQ(wire.size(), kIcpHeaderBytes + 12 + 12);
    EXPECT_EQ(decode_dirupdate(wire), u);
}

TEST(IcpMessage, DirUpdateFullRoundTrip) {
    IcpDirUpdate u;
    u.request_number = 10;
    u.sender_host = 0x02;
    u.boot_id = 0xb002;
    u.spec = HashSpec{4, 32, 256};
    u.full = true;
    u.bitmap_words.assign(8, 0);  // 256 bits = 8 x 32-bit words
    u.bitmap_words[0] = 0xdeadbeef;
    u.bitmap_words[7] = 1;
    const auto wire = encode_dirupdate(u);
    const auto back = decode_dirupdate(wire);
    EXPECT_TRUE(back.full);
    EXPECT_EQ(back, u);
}

TEST(IcpMessage, DecodeHeaderPeeksOpcode) {
    IcpReply r;
    r.opcode = IcpOpcode::hit;
    r.url = "x";
    const auto h = decode_header(encode_reply(r));
    EXPECT_EQ(h.opcode, IcpOpcode::hit);
    EXPECT_EQ(h.version, kIcpVersion);
}

TEST(IcpMessage, LengthMismatchRejected) {
    auto wire = encode_query({1, 2, 3, "http://u"});
    wire.push_back(0);  // datagram longer than the length field claims
    EXPECT_THROW((void)decode_header(wire), WireError);
}

TEST(IcpMessage, TruncatedDatagramRejected) {
    auto wire = encode_query({1, 2, 3, "http://u"});
    wire.resize(wire.size() - 3);
    EXPECT_THROW((void)decode_query(wire), WireError);
}

TEST(IcpMessage, WrongVersionRejected) {
    auto wire = encode_query({1, 2, 3, "http://u"});
    wire[1] = 3;  // ICP v3 does not exist
    EXPECT_THROW((void)decode_query(wire), WireError);
}

TEST(IcpMessage, WrongOpcodeRejected) {
    const auto query = encode_query({1, 2, 3, "http://u"});
    EXPECT_THROW((void)decode_reply(query), WireError);
    EXPECT_THROW((void)decode_dirupdate(query), WireError);
    IcpReply r;
    r.opcode = IcpOpcode::miss;
    r.url = "u";
    EXPECT_THROW((void)decode_query(encode_reply(r)), WireError);
}

TEST(IcpMessage, InvalidSpecInUpdateRejected) {
    IcpDirUpdate u;
    u.spec = HashSpec{0, 32, 100};  // zero hash functions
    EXPECT_THROW((void)encode_dirupdate(u), WireError);
}

TEST(IcpMessage, OutOfRangeBitIndexRejected) {
    IcpDirUpdate u;
    u.spec = HashSpec{4, 32, 128};
    u.records = {encode_bit_flip({500, true})};  // 500 >= 128
    const auto wire = encode_dirupdate(u);       // encoder doesn't inspect records
    EXPECT_THROW((void)decode_dirupdate(wire), WireError);
}

TEST(IcpMessage, BitmapWordCountMismatchRejected) {
    // Fulls are chunked (word_offset), so a SHORT bitmap is a legal chunk —
    // but a chunk reaching past the table, an offset beyond it, or an empty
    // chunk is still malformed.
    IcpDirUpdate u;
    u.spec = HashSpec{4, 32, 256};  // 8 words
    u.full = true;
    u.bitmap_words.assign(7, 0);
    EXPECT_NO_THROW((void)encode_dirupdate(u));  // first 7 of 8: valid chunk
    u.word_offset = 4;
    u.bitmap_words.assign(5, 0);  // 4 + 5 > 8: overruns the table
    EXPECT_THROW((void)encode_dirupdate(u), WireError);
    u.word_offset = 8;  // offset past the last word
    u.bitmap_words.assign(1, 0);
    EXPECT_THROW((void)encode_dirupdate(u), WireError);
    u.word_offset = 0;
    u.bitmap_words.clear();  // empty chunk carries nothing
    EXPECT_THROW((void)encode_dirupdate(u), WireError);
}

TEST(IcpMessage, UrlWithNulRejected) {
    IcpQuery q;
    q.url = std::string("http://a\0b", 10);
    EXPECT_THROW((void)encode_query(q), WireError);
}

TEST(IcpMessage, OpcodeNames) {
    EXPECT_STREQ(icp_opcode_name(IcpOpcode::query), "QUERY");
    EXPECT_STREQ(icp_opcode_name(IcpOpcode::dirupdate), "DIRUPDATE");
    EXPECT_STREQ(icp_opcode_name(IcpOpcode::dirfull), "DIRFULL");
    EXPECT_STREQ(icp_opcode_name(static_cast<IcpOpcode>(99)), "?");
}

TEST(IcpMessage, HitObjRoundTrip) {
    IcpHitObj h;
    h.request_number = 77;
    h.sender_host = 5;
    h.version = 0xdeadbeef;
    h.url = "http://small/object";
    h.object = {1, 2, 3, 4, 5, 0, 255};
    const auto wire = encode_hit_obj(h);
    EXPECT_EQ(decode_hit_obj(wire), h);
    const IcpHeader header = decode_header(wire);
    EXPECT_EQ(header.opcode, IcpOpcode::hit_obj);
    EXPECT_EQ(header.option_data, 0xdeadbeefu);
}

TEST(IcpMessage, HitObjEmptyBody) {
    IcpHitObj h;
    h.url = "http://zero/bytes";
    EXPECT_EQ(decode_hit_obj(encode_hit_obj(h)), h);
}

TEST(IcpMessage, HitObjTooLargeRejected) {
    IcpHitObj h;
    h.url = "u";
    h.object.assign(kMaxHitObjBytes + 1, 0x7f);
    EXPECT_THROW((void)encode_hit_obj(h), WireError);
}

TEST(IcpMessage, HitObjLengthFieldMismatchRejected) {
    IcpHitObj h;
    h.url = "u";
    h.object = {9, 9, 9};
    auto wire = encode_hit_obj(h);
    wire.push_back(0);                 // trailing byte
    wire[3] = static_cast<std::uint8_t>(wire.size());  // fix up total length
    EXPECT_THROW((void)decode_hit_obj(wire), WireError);
}

TEST(IcpMessage, MaxRecordsFitsDatagram) {
    IcpDirUpdate u;
    u.spec = HashSpec{4, 32, kMaxWireTableBits};
    u.records.assign(kMaxRecordsPerUpdate, encode_bit_flip({1, true}));
    const auto wire = encode_dirupdate(u);
    EXPECT_LE(wire.size(), kMaxIcpDatagram);
    u.records.push_back(encode_bit_flip({1, true}));
    EXPECT_THROW((void)encode_dirupdate(u), WireError);  // one over: too big
}

TEST(IcpMessage, OversizedTableSpecRejectedBothWays) {
    // A hostile spec must not size an allocation: both encoder and decoder
    // refuse anything past kMaxWireTableBits (the decoder never gets to
    // trust the word count that follows).
    IcpDirUpdate u;
    u.spec = HashSpec{4, 32, kMaxWireTableBits};
    u.records = {encode_bit_flip({1, true})};
    auto wire = encode_dirupdate(u);
    u.spec.table_bits = kMaxWireTableBits + 1;
    EXPECT_THROW((void)encode_dirupdate(u), WireError);
    // Patch the oversized table size into otherwise-valid bytes: the spec
    // sits right after the 20-byte header (k, bits_per_fn, table_bits).
    wire[kIcpHeaderBytes + 4] = 0x04;  // big-endian (1u << 26) + 1
    wire[kIcpHeaderBytes + 5] = 0x00;
    wire[kIcpHeaderBytes + 6] = 0x00;
    wire[kIcpHeaderBytes + 7] = 0x01;
    EXPECT_THROW((void)decode_dirupdate(wire), WireError);
}

TEST(IcpMessage, ReliabilityFieldsRoundTrip) {
    // boot_id (header options) and word_offset (header option_data) are the
    // gap-detection state: losing either on the wire would make restarts
    // and chunked fulls indistinguishable from healthy streams.
    IcpDirUpdate u;
    u.request_number = 0xcafe;
    u.sender_host = 3;
    u.boot_id = 0x1234abcd;
    u.spec = HashSpec{4, 32, 256};
    u.full = true;
    u.word_offset = 2;
    u.bitmap_words = {5, 6, 7};
    const auto back = decode_dirupdate(encode_dirupdate(u));
    EXPECT_EQ(back, u);
    EXPECT_EQ(back.boot_id, 0x1234abcdu);
    EXPECT_EQ(back.word_offset, 2u);
    // Deltas carry boot_id too (every datagram names its incarnation).
    IcpDirUpdate d;
    d.request_number = 7;
    d.sender_host = 9;
    d.boot_id = 42;
    d.spec = HashSpec{4, 32, 65536};
    d.records = {encode_bit_flip({11, true})};
    EXPECT_EQ(decode_dirupdate(encode_dirupdate(d)), d);
}

TEST(IcpMessage, DirReqRoundTrip) {
    IcpDirReq q;
    q.request_number = 31337;
    q.sender_host = 0x0a000005;
    q.http_port = 8081;
    const auto wire = encode_dirreq(q);
    EXPECT_EQ(wire.size(), kIcpHeaderBytes);  // empty payload, header-only
    EXPECT_EQ(decode_dirreq(wire), q);
    const IcpHeader h = decode_header(wire);
    EXPECT_EQ(h.opcode, IcpOpcode::dirreq);
    EXPECT_EQ(h.options & 0xffffu, 8081u);  // port rides in options
    // Wrong opcode is rejected like every other decoder.
    EXPECT_THROW((void)decode_dirreq(encode_query({1, 2, 3, "http://u"})), WireError);
}

TEST(IcpMessage, DirReqIntroductionRoundTrip) {
    IcpDirReq intro;
    intro.request_number = 7;
    intro.sender_host = 1;
    intro.http_port = 8080;
    intro.subject_id = 4;
    intro.subject_icp_host = 0x7f000001;
    intro.subject_icp_port = 3130;
    intro.subject_http_port = 3128;
    const auto wire = encode_dirreq(intro);
    EXPECT_EQ(wire.size(), kIcpHeaderBytes + 12);  // subject rides as payload
    EXPECT_EQ(decode_dirreq(wire), intro);

    // A truncated or padded introduction payload is rejected.
    auto short_wire = wire;
    short_wire.pop_back();
    short_wire[3] = static_cast<std::uint8_t>(short_wire.size());
    EXPECT_THROW((void)decode_dirreq(short_wire), WireError);
    auto long_wire = wire;
    long_wire.push_back(0);
    long_wire[3] = static_cast<std::uint8_t>(long_wire.size());
    EXPECT_THROW((void)decode_dirreq(long_wire), WireError);

    // A payload claiming subject 0 is malformed: id 0 means "no subject",
    // so it must never arrive with introduction bytes attached.
    auto zero_subject = wire;
    zero_subject[kIcpHeaderBytes] = 0;
    zero_subject[kIcpHeaderBytes + 1] = 0;
    zero_subject[kIcpHeaderBytes + 2] = 0;
    zero_subject[kIcpHeaderBytes + 3] = 0;
    EXPECT_THROW((void)decode_dirreq(zero_subject), WireError);
}

}  // namespace
}  // namespace sc
