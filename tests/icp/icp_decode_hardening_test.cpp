// Malformed-datagram hardening for the ICP codec: inputs the pre-ByteReader
// decoder either accepted or mishandled must now throw WireError AND count
// toward sc_icp_malformed_total. Each case is a valid datagram with targeted
// byte surgery, so the suite doubles as documentation of the wire layout's
// trust boundary (cases seeded from the fuzz corpus, see fuzz/README.md).
#include "icp/icp_message.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using namespace sc;

std::span<const std::uint8_t> span_of(const std::vector<std::uint8_t>& v) {
    return {v.data(), v.size()};
}

obs::Counter malformed_counter() {
    return obs::metrics().counter("sc_icp_malformed_total",
                                  "ICP datagrams rejected by the checked-decode layer");
}

/// Assert the decode throws WireError and bumps the malformed counter once.
template <typename Fn>
void expect_rejected_and_counted(const std::vector<std::uint8_t>& datagram, Fn&& decode) {
    const obs::Counter c = malformed_counter();
    const std::uint64_t before = c.value();
    EXPECT_THROW(decode(span_of(datagram)), WireError);
    EXPECT_EQ(c.value(), before + 1);
}

/// Reseal the length field after surgery that changed the datagram size.
void fix_length(std::vector<std::uint8_t>& d) {
    d[2] = static_cast<std::uint8_t>(d.size() >> 8);
    d[3] = static_cast<std::uint8_t>(d.size());
}

IcpQuery sample_query() {
    IcpQuery q;
    q.request_number = 7;
    q.sender_host = 0x0A000001;
    q.requester_host = 0x0A000002;
    q.url = "http://example.com/a";
    return q;
}

IcpDirUpdate sample_delta() {
    IcpDirUpdate u;
    u.request_number = 3;
    u.sender_host = 0x0A000001;
    u.boot_id = 0xB007;
    u.spec.function_num = 4;
    u.spec.function_bits = 10;
    u.spec.table_bits = 1024;
    u.records = {5, 9, (1u << 31) | 700};
    return u;
}

IcpDirUpdate sample_full(std::uint32_t table_bits = 40) {
    IcpDirUpdate u;
    u.request_number = 3;
    u.sender_host = 0x0A000001;
    u.boot_id = 0xB007;
    u.full = true;
    u.spec.function_num = 4;
    u.spec.function_bits = 10;
    u.spec.table_bits = table_bits;
    u.bitmap_words.assign((table_bits + 31) / 32, 0x1u);
    return u;
}

// --- header-level rejections ------------------------------------------------

TEST(IcpDecodeHardening, OpInvalidOnTheWireIsRejected) {
    auto d = encode_query(sample_query());
    d[0] = 0;  // ICP_OP_INVALID: RFC reserves it, nothing legitimate sends it
    expect_rejected_and_counted(d, decode_header);
}

TEST(IcpDecodeHardening, LengthFieldLieIsRejected) {
    auto d = encode_query(sample_query());
    d[3] ^= 0x01;  // header claims a different size than the datagram
    expect_rejected_and_counted(d, decode_query);
}

TEST(IcpDecodeHardening, TruncatedHeaderIsRejected) {
    auto d = encode_query(sample_query());
    d.resize(kIcpHeaderBytes - 1);
    expect_rejected_and_counted(d, decode_header);
}

// --- URL hygiene (query / reply / hit_obj) ----------------------------------

TEST(IcpDecodeHardening, EmptyQueryUrlIsRejected) {
    auto q = sample_query();
    q.url.clear();
    const auto d = encode_query(q);  // encoder is permissive; the boundary is decode
    expect_rejected_and_counted(d, decode_query);
}

TEST(IcpDecodeHardening, ControlByteInUrlIsRejected) {
    auto q = sample_query();
    q.url = "http://example.com/a\rb";  // CR smuggled toward logs/HTTP fetch
    const auto d = encode_query(q);
    expect_rejected_and_counted(d, decode_query);
}

TEST(IcpDecodeHardening, OversizeUrlIsRejected) {
    auto q = sample_query();
    q.url = "http://e/" + std::string(kMaxIcpUrlBytes, 'a');
    const auto d = encode_query(q);
    expect_rejected_and_counted(d, decode_query);
}

TEST(IcpDecodeHardening, EmptyReplyUrlIsRejectedExceptForProbes) {
    IcpReply r;
    r.opcode = IcpOpcode::hit;
    r.request_number = 1;
    auto d = encode_reply(r);
    expect_rejected_and_counted(d, decode_reply);

    // SECHO/DECHO liveness probes are the documented empty-URL exception.
    r.opcode = IcpOpcode::secho;
    d = encode_reply(r);
    EXPECT_EQ(decode_reply(span_of(d)).opcode, IcpOpcode::secho);
}

TEST(IcpDecodeHardening, ControlByteInHitObjUrlIsRejected) {
    IcpHitObj h;
    h.request_number = 2;
    h.url = "http://e/\na";
    h.object = {1, 2, 3};
    const auto d = encode_hit_obj(h);
    expect_rejected_and_counted(d, decode_hit_obj);
}

// --- directory updates ------------------------------------------------------

TEST(IcpDecodeHardening, ZeroBootIdIsRejected) {
    auto d = encode_dirupdate(sample_delta());
    // boot_id rides in header options (bytes 8..12); zero it post-encode.
    d[8] = d[9] = d[10] = d[11] = 0;
    expect_rejected_and_counted(d, decode_dirupdate);
}

TEST(IcpDecodeHardening, DeltaWithWordOffsetIsRejected) {
    auto d = encode_dirupdate(sample_delta());
    d[15] = 1;  // option_data is DIRFULL's chunk offset; a delta must not carry one
    expect_rejected_and_counted(d, decode_dirupdate);
}

TEST(IcpDecodeHardening, ZeroHashSpecIsRejected) {
    auto d = encode_dirupdate(sample_delta());
    // Payload starts at byte 20: function_num:16 function_bits:16 table_bits:32.
    for (std::size_t i = 20; i < 28; ++i) d[i] = 0;
    expect_rejected_and_counted(d, decode_dirupdate);
}

TEST(IcpDecodeHardening, OversizeTableBitsIsRejected) {
    auto d = encode_dirupdate(sample_delta());
    d[24] = 0xFF;  // table_bits high byte: claims > kMaxWireTableBits
    expect_rejected_and_counted(d, decode_dirupdate);
}

TEST(IcpDecodeHardening, TruncatedRecordPayloadIsRejected) {
    auto d = encode_dirupdate(sample_delta());
    d.resize(d.size() - 2);  // tear the last record in half
    fix_length(d);
    expect_rejected_and_counted(d, decode_dirupdate);
}

TEST(IcpDecodeHardening, RecordCountLieIsRejected) {
    auto d = encode_dirupdate(sample_delta());
    d[31] += 1;  // count field (bytes 28..32) claims one more record than present
    expect_rejected_and_counted(d, decode_dirupdate);
}

TEST(IcpDecodeHardening, BitIndexBeyondTableIsRejected) {
    auto u = sample_delta();
    u.records.back() = 1024;  // == table_bits: one past the last valid index
    const auto d = encode_dirupdate(u);
    expect_rejected_and_counted(d, decode_dirupdate);
}

TEST(IcpDecodeHardening, TailSlackBitsInFinalWordAreRejected) {
    // table_bits = 40: the second wire word covers bits 32..39 and its top
    // 24 bits are slack no sender can set. assign_words does not mask, so
    // letting them through would poison fill-ratio and diff math.
    auto u = sample_full(40);
    u.bitmap_words.back() = 0x100u;  // word bit 8 = table bit 40: out of range
    expect_rejected_and_counted(encode_dirupdate(u), decode_dirupdate);

    u.bitmap_words.back() = 0x7Fu;  // bits 32..38 only: legitimate
    const auto good = encode_dirupdate(u);
    EXPECT_EQ(decode_dirupdate(span_of(good)).bitmap_words.back(), 0x7Fu);
}

TEST(IcpDecodeHardening, FullChunkBeyondTableIsRejected) {
    auto d = encode_dirupdate(sample_full(64));
    d[15] = 2;  // word_offset = 2 with 2 words present: runs past expected_words
    expect_rejected_and_counted(d, decode_dirupdate);
}

// --- dirreq introductions ---------------------------------------------------

TEST(IcpDecodeHardening, IntroductionWithZeroPortIsRejected) {
    IcpDirReq q;
    q.request_number = 1;
    q.subject_id = 42;
    q.subject_icp_host = 0x0A000003;
    q.subject_icp_port = 0;  // undialable: would poison peers' membership tables
    q.subject_http_port = 8080;
    const auto d = encode_dirreq(q);
    expect_rejected_and_counted(d, decode_dirreq);
}

TEST(IcpDecodeHardening, IntroductionWithZeroSubjectIsRejected) {
    IcpDirReq q;
    q.request_number = 1;
    q.subject_id = 42;
    q.subject_icp_port = 3130;
    auto d = encode_dirreq(q);
    for (std::size_t i = 20; i < 24; ++i) d[i] = 0;  // subject_id field
    expect_rejected_and_counted(d, decode_dirreq);
}

// --- the counter itself -----------------------------------------------------

TEST(IcpDecodeHardening, WellFormedTrafficDoesNotCount) {
    const obs::Counter c = malformed_counter();
    const std::uint64_t before = c.value();
    (void)decode_query(span_of(encode_query(sample_query())));
    (void)decode_dirupdate(span_of(encode_dirupdate(sample_delta())));
    (void)decode_dirupdate(span_of(encode_dirupdate(sample_full())));
    EXPECT_EQ(c.value(), before);
}

}  // namespace
