#include "icp/udp_socket.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sc {
namespace {

TEST(Endpoint, ToStringAndLoopback) {
    const Endpoint ep = Endpoint::loopback(8080);
    EXPECT_EQ(ep.host, 0x7f000001u);
    EXPECT_EQ(ep.to_string(), "127.0.0.1:8080");
}

TEST(Endpoint, SockaddrRoundTrip) {
    const Endpoint ep{0x7f000001u, 12345};
    EXPECT_EQ(Endpoint::from_sockaddr(ep.to_sockaddr()), ep);
}

TEST(UdpSocket, BindsEphemeralPort) {
    UdpSocket s;
    const Endpoint ep = s.local_endpoint();
    EXPECT_EQ(ep.host, 0x7f000001u);
    EXPECT_GT(ep.port, 0);
}

TEST(UdpSocket, SendAndReceive) {
    UdpSocket a, b;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    a.send_to(b.local_endpoint(), payload);
    const auto dgram = b.receive(1000);
    ASSERT_TRUE(dgram.has_value());
    EXPECT_EQ(dgram->payload, payload);
    EXPECT_EQ(dgram->from, a.local_endpoint());
}

TEST(UdpSocket, ReceiveTimesOut) {
    UdpSocket s;
    const auto dgram = s.receive(20);
    EXPECT_FALSE(dgram.has_value());
}

TEST(UdpSocket, PreservesDatagramBoundaries) {
    UdpSocket a, b;
    a.send_to(b.local_endpoint(), std::vector<std::uint8_t>{1});
    a.send_to(b.local_endpoint(), std::vector<std::uint8_t>{2, 2});
    const auto first = b.receive(1000);
    const auto second = b.receive(1000);
    ASSERT_TRUE(first && second);
    EXPECT_EQ(first->payload.size(), 1u);
    EXPECT_EQ(second->payload.size(), 2u);
}

TEST(UdpSocket, EmptyDatagram) {
    UdpSocket a, b;
    a.send_to(b.local_endpoint(), std::span<const std::uint8_t>{});
    const auto dgram = b.receive(1000);
    ASSERT_TRUE(dgram.has_value());
    EXPECT_TRUE(dgram->payload.empty());
}

TEST(UdpSocket, MoveTransfersOwnership) {
    UdpSocket a;
    const Endpoint ep = a.local_endpoint();
    UdpSocket b = std::move(a);
    EXPECT_EQ(b.local_endpoint(), ep);
    UdpSocket c;
    c = std::move(b);
    EXPECT_EQ(c.local_endpoint(), ep);
    // And the moved-to socket still works.
    UdpSocket peer;
    peer.send_to(c.local_endpoint(), std::vector<std::uint8_t>{9});
    ASSERT_TRUE(c.receive(1000).has_value());
}

TEST(Endpoint, ParseForms) {
    EXPECT_EQ(Endpoint::parse("10.1.2.3:8080"), (Endpoint{0x0a010203u, 8080}));
    EXPECT_EQ(Endpoint::parse("8080"), Endpoint::loopback(8080));
    EXPECT_EQ(Endpoint::parse(":9000"), Endpoint::any(9000));
    EXPECT_EQ(Endpoint::parse("127.0.0.1:1"), Endpoint::loopback(1));
    EXPECT_FALSE(Endpoint::parse("").has_value());
    EXPECT_FALSE(Endpoint::parse("hostname:80").has_value());   // no DNS
    EXPECT_FALSE(Endpoint::parse("1.2.3.4:").has_value());      // missing port
    EXPECT_FALSE(Endpoint::parse("1.2.3.4:99999").has_value()); // port overflow
    EXPECT_FALSE(Endpoint::parse("1.2.3:80").has_value());      // short quad
    EXPECT_FALSE(Endpoint::parse("256.0.0.1:80").has_value());  // octet overflow
    EXPECT_FALSE(Endpoint::parse("1.2.3.4:8a").has_value());    // junk in port
}

TEST(UdpSocket, BindAnyInterfaceReceivesLoopbackTraffic) {
    UdpSocket any_sock(Endpoint::any(0));
    const std::uint16_t port = any_sock.local_endpoint().port;
    UdpSocket sender;
    sender.send_to(Endpoint::loopback(port), std::vector<std::uint8_t>{42});
    const auto dgram = any_sock.receive(1000);
    ASSERT_TRUE(dgram.has_value());
    EXPECT_EQ(dgram->payload, std::vector<std::uint8_t>{42});
}

TEST(UdpSocket, LargeDatagram) {
    UdpSocket a, b;
    const std::vector<std::uint8_t> payload(32'000, 0x5a);
    a.send_to(b.local_endpoint(), payload);
    const auto dgram = b.receive(1000);
    ASSERT_TRUE(dgram.has_value());
    EXPECT_EQ(dgram->payload, payload);
}

}  // namespace
}  // namespace sc
