// Send-side fault injection (UdpSocket::set_fault_injection): the knob the
// mesh convergence tests turn. Faults must be deterministic under a fixed
// seed — a failing soak run replays exactly — and the env-var path lets CI
// sweep loss rates without new binaries.
#include "icp/udp_socket.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

namespace sc {
namespace {

std::vector<std::uint8_t> msg(std::uint8_t tag) { return {tag, 0x5c}; }

// Drain everything currently queued on `rx` (no waiting beyond 50ms gaps).
std::vector<std::uint8_t> drain_tags(UdpSocket& rx) {
    std::vector<std::uint8_t> tags;
    while (const auto d = rx.receive(50)) tags.push_back(d->payload.at(0));
    return tags;
}

TEST(UdpFault, TotalLossDeliversNothing) {
    UdpSocket rx;
    UdpSocket tx;
    UdpFaultConfig faults;
    faults.loss = 1.0;
    tx.set_fault_injection(faults);
    for (std::uint8_t i = 0; i < 20; ++i) tx.send_to(rx.local_endpoint(), msg(i));
    EXPECT_TRUE(drain_tags(rx).empty());
}

TEST(UdpFault, DuplicateDeliversTwice) {
    UdpSocket rx;
    UdpSocket tx;
    UdpFaultConfig faults;
    faults.duplicate = 1.0;
    tx.set_fault_injection(faults);
    tx.send_to(rx.local_endpoint(), msg(7));
    const auto tags = drain_tags(rx);
    ASSERT_EQ(tags.size(), 2u);
    EXPECT_EQ(tags[0], 7u);
    EXPECT_EQ(tags[1], 7u);
}

TEST(UdpFault, ReorderHoldsOneDatagramBack) {
    UdpSocket rx;
    UdpSocket tx;
    UdpFaultConfig faults;
    faults.reorder = 1.0;  // every datagram is held until the next send
    tx.set_fault_injection(faults);
    tx.send_to(rx.local_endpoint(), msg(1));
    EXPECT_TRUE(drain_tags(rx).empty());  // 1 is in flight, held
    tx.send_to(rx.local_endpoint(), msg(2));
    // Sending 2 releases 1 *after* it: delivery order is 2, then 1.
    const auto tags = drain_tags(rx);
    ASSERT_EQ(tags.size(), 2u);
    EXPECT_EQ(tags[0], 2u);
    EXPECT_EQ(tags[1], 1u);
}

TEST(UdpFault, LossPatternIsDeterministicUnderASeed) {
    // Two independent sockets with the same seed drop exactly the same
    // subset — the property that makes soak-test failures replayable.
    const auto deliveries = [](std::uint64_t seed) {
        UdpSocket rx;
        UdpSocket tx;
        UdpFaultConfig faults;
        faults.loss = 0.5;
        faults.seed = seed;
        tx.set_fault_injection(faults);
        for (std::uint8_t i = 0; i < 64; ++i) tx.send_to(rx.local_endpoint(), msg(i));
        std::set<std::uint8_t> got;
        while (const auto d = rx.receive(50)) got.insert(d->payload.at(0));
        return got;
    };
    const auto a = deliveries(1234);
    const auto b = deliveries(1234);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());       // p=0.5 over 64 sends: some survive...
    EXPECT_LT(a.size(), 64u);      // ...and some drop
    EXPECT_NE(a, deliveries(99));  // another seed, another pattern
}

TEST(UdpFault, ZeroConfigInjectsNothing) {
    UdpSocket rx;
    UdpSocket tx;
    tx.set_fault_injection(UdpFaultConfig{});  // all-zero: removes injection
    for (std::uint8_t i = 0; i < 8; ++i) tx.send_to(rx.local_endpoint(), msg(i));
    EXPECT_EQ(drain_tags(rx).size(), 8u);
    EXPECT_FALSE(UdpFaultConfig{}.any());
}

TEST(UdpFault, FromEnvReadsTheSweepKnobs) {
    ::setenv("SC_UDP_FAULT_LOSS", "0.25", 1);
    ::setenv("SC_UDP_FAULT_DUP", "0.125", 1);
    ::setenv("SC_UDP_FAULT_REORDER", "0.5", 1);
    ::setenv("SC_UDP_FAULT_SEED", "77", 1);
    const auto cfg = UdpFaultConfig::from_env();
    EXPECT_DOUBLE_EQ(cfg.loss, 0.25);
    EXPECT_DOUBLE_EQ(cfg.duplicate, 0.125);
    EXPECT_DOUBLE_EQ(cfg.reorder, 0.5);
    EXPECT_EQ(cfg.seed, 77u);
    EXPECT_TRUE(cfg.any());
    ::unsetenv("SC_UDP_FAULT_LOSS");
    ::unsetenv("SC_UDP_FAULT_DUP");
    ::unsetenv("SC_UDP_FAULT_REORDER");
    ::unsetenv("SC_UDP_FAULT_SEED");
    const auto clean = UdpFaultConfig::from_env();
    EXPECT_FALSE(clean.any());
    EXPECT_EQ(clean.seed, 1u);
}

}  // namespace
}  // namespace sc
