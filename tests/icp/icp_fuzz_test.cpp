// Robustness of the wire decoders against corrupted datagrams: the proxy
// feeds raw network bytes straight into these functions, so any input —
// truncated, bit-flipped, or random — must either decode or throw
// WireError; it must never crash, hang, or allocate absurdly.
#include <gtest/gtest.h>

#include <vector>

#include "bloom/delta_log.hpp"
#include "icp/icp_message.hpp"
#include "util/rng.hpp"

namespace sc {
namespace {

// Exercise every decoder; only WireError may escape.
void decode_all(std::span<const std::uint8_t> datagram) {
    try {
        (void)decode_header(datagram);
    } catch (const WireError&) {
    }
    try {
        (void)decode_query(datagram);
    } catch (const WireError&) {
    }
    try {
        (void)decode_reply(datagram);
    } catch (const WireError&) {
    }
    try {
        (void)decode_dirupdate(datagram);
    } catch (const WireError&) {
    }
    try {
        (void)decode_hit_obj(datagram);
    } catch (const WireError&) {
    }
}

TEST(IcpFuzz, RandomBytesNeverCrash) {
    Rng rng(0xf022);
    for (int round = 0; round < 3000; ++round) {
        std::vector<std::uint8_t> data(rng.next_below(120));
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
        decode_all(data);
    }
}

TEST(IcpFuzz, TruncationsOfValidMessagesNeverCrash) {
    const auto query = encode_query({7, 1, 2, "http://fuzz.example.com/some/path"});
    IcpDirUpdate u;
    u.spec = HashSpec{4, 32, 4096};
    for (std::uint32_t i = 0; i < 40; ++i) u.records.push_back(encode_bit_flip({i * 97 % 4096, i % 2 == 0}));
    const auto update = encode_dirupdate(u);

    for (const auto& msg : {query, update}) {
        for (std::size_t len = 0; len <= msg.size(); ++len) {
            decode_all(std::span<const std::uint8_t>(msg.data(), len));
        }
    }
}

TEST(IcpFuzz, SingleByteCorruptionsNeverCrash) {
    const auto query = encode_query({3, 9, 9, "http://x/y"});
    Rng rng(1234);
    for (std::size_t pos = 0; pos < query.size(); ++pos) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mutated = query;
            mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
            decode_all(mutated);
        }
    }
}

TEST(IcpFuzz, LengthFieldLiesAreRejected) {
    auto query = encode_query({1, 1, 1, "http://u"});
    // Claim a huge length: header check must reject (datagram mismatch).
    query[2] = 0xff;
    query[3] = 0xff;
    EXPECT_THROW((void)decode_header(query), WireError);
    // Claim zero length.
    query[2] = 0;
    query[3] = 0;
    EXPECT_THROW((void)decode_header(query), WireError);
}

TEST(IcpFuzz, HugeClaimedRecordCountRejectedWithoutAllocation) {
    // Hand-craft a dirupdate whose count field claims 2^31 records but
    // whose payload is tiny: must throw before trying to reserve.
    BufWriter w;
    w.u8(static_cast<std::uint8_t>(IcpOpcode::dirupdate));
    w.u8(kIcpVersion);
    w.u16(0);
    w.u32(1);  // request number
    w.u32(0);
    w.u32(0);
    w.u32(0);
    w.u16(4);      // function num
    w.u16(32);     // function bits
    w.u32(4096);   // table bits
    w.u32(0x7fffffff);  // ludicrous record count
    w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
    const auto data = w.take();
    EXPECT_THROW((void)decode_dirupdate(data), WireError);
}

}  // namespace
}  // namespace sc
