#include "icp/reply_demux.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace sc {
namespace {

using namespace std::chrono_literals;

Datagram tagged(std::uint8_t tag) {
    Datagram d;
    d.payload = {tag};
    return d;
}

std::chrono::steady_clock::time_point in(std::chrono::milliseconds ms) {
    return std::chrono::steady_clock::now() + ms;
}

TEST(ReplyDemux, DeliversRepliesFifoToTheirRound) {
    ReplyDemux demux;
    auto waiter = demux.register_query(7);
    EXPECT_TRUE(demux.dispatch(7, tagged(1)));
    EXPECT_TRUE(demux.dispatch(7, tagged(2)));
    const auto first = waiter.wait_next(in(500ms));
    const auto second = waiter.wait_next(in(500ms));
    ASSERT_TRUE(first && second);
    EXPECT_EQ(first->payload[0], 1);
    EXPECT_EQ(second->payload[0], 2);
}

TEST(ReplyDemux, InterleavedRepliesForConcurrentRoundsNeverCross) {
    // Two worker threads with outstanding rounds; the "event loop" (this
    // thread) interleaves replies for both. Each worker must see exactly
    // its own replies, in order.
    ReplyDemux demux;
    auto wa = demux.register_query(100);
    auto wb = demux.register_query(200);

    std::vector<std::uint8_t> got_a, got_b;
    std::thread ta([&] {
        for (int i = 0; i < 3; ++i)
            if (auto d = wa.wait_next(in(2000ms))) got_a.push_back(d->payload[0]);
    });
    std::thread tb([&] {
        for (int i = 0; i < 3; ++i)
            if (auto d = wb.wait_next(in(2000ms))) got_b.push_back(d->payload[0]);
    });
    EXPECT_TRUE(demux.dispatch(200, tagged(10)));
    EXPECT_TRUE(demux.dispatch(100, tagged(1)));
    EXPECT_TRUE(demux.dispatch(100, tagged(2)));
    EXPECT_TRUE(demux.dispatch(200, tagged(11)));
    EXPECT_TRUE(demux.dispatch(100, tagged(3)));
    EXPECT_TRUE(demux.dispatch(200, tagged(12)));
    ta.join();
    tb.join();
    EXPECT_EQ(got_a, (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(got_b, (std::vector<std::uint8_t>{10, 11, 12}));
}

TEST(ReplyDemux, UnknownRequestNumberIsStale) {
    ReplyDemux demux;
    EXPECT_FALSE(demux.dispatch(42, tagged(1)));
    EXPECT_EQ(demux.stale_replies(), 1u);
    {
        auto waiter = demux.register_query(42);
        EXPECT_EQ(demux.pending_rounds(), 1u);
        EXPECT_TRUE(demux.dispatch(42, tagged(2)));
        ASSERT_TRUE(waiter.wait_next(in(500ms)));
    }
    // The round expired with the waiter: late replies are stale again.
    EXPECT_EQ(demux.pending_rounds(), 0u);
    EXPECT_FALSE(demux.dispatch(42, tagged(3)));
    EXPECT_EQ(demux.stale_replies(), 2u);
}

TEST(ReplyDemux, WaitTimesOutWhenNoReplyArrives) {
    ReplyDemux demux;
    auto waiter = demux.register_query(1);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(waiter.wait_next(in(30ms)));
    EXPECT_GE(std::chrono::steady_clock::now() - start, 30ms);
}

TEST(ReplyDemux, ShutdownWakesBlockedWaiters) {
    ReplyDemux demux;
    auto waiter = demux.register_query(9);
    std::thread t([&] { EXPECT_FALSE(waiter.wait_next(in(10s))); });
    std::this_thread::sleep_for(20ms);
    demux.shutdown();
    t.join();  // must return promptly, not after 10s
    // Post-shutdown waits return immediately.
    auto late = demux.register_query(10);
    EXPECT_FALSE(late.wait_next(in(10s)));
}

TEST(ReplyDemux, MovedFromWaiterReleasesOwnership) {
    ReplyDemux demux;
    auto a = demux.register_query(5);
    IcpReplyWaiter b = std::move(a);
    EXPECT_EQ(b.query_number(), 5u);
    EXPECT_TRUE(demux.dispatch(5, tagged(1)));
    EXPECT_TRUE(b.wait_next(in(500ms)));
}

}  // namespace
}  // namespace sc
