#include "icp/wire.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

TEST(BufWriter, BigEndianEncoding) {
    BufWriter w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    const auto& buf = w.data();
    ASSERT_EQ(buf.size(), 7u);
    EXPECT_EQ(buf[0], 0xab);
    EXPECT_EQ(buf[1], 0x12);
    EXPECT_EQ(buf[2], 0x34);
    EXPECT_EQ(buf[3], 0xde);
    EXPECT_EQ(buf[4], 0xad);
    EXPECT_EQ(buf[5], 0xbe);
    EXPECT_EQ(buf[6], 0xef);
}

TEST(BufRoundTrip, AllPrimitives) {
    BufWriter w;
    w.u8(7);
    w.u16(65535);
    w.u32(4'000'000'000u);
    w.cstring("hello world");
    const std::array<std::uint8_t, 3> raw = {1, 2, 3};
    w.bytes(raw);
    const auto buf = w.take();

    BufReader r(buf);
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u16(), 65535);
    EXPECT_EQ(r.u32(), 4'000'000'000u);
    EXPECT_EQ(r.cstring(), "hello world");
    const auto back = r.bytes(3);
    EXPECT_TRUE(std::equal(back.begin(), back.end(), raw.begin()));
    EXPECT_TRUE(r.empty());
}

TEST(BufReader, TruncatedReadsThrow) {
    const std::vector<std::uint8_t> buf = {0x01};
    BufReader r16(buf);
    EXPECT_THROW((void)r16.u16(), WireError);
    BufReader r32(buf);
    EXPECT_THROW((void)r32.u32(), WireError);
    BufReader rb(buf);
    EXPECT_THROW((void)rb.bytes(2), WireError);
}

TEST(BufReader, UnterminatedStringThrows) {
    const std::vector<std::uint8_t> buf = {'a', 'b', 'c'};  // no NUL
    BufReader r(buf);
    EXPECT_THROW((void)r.cstring(), WireError);
}

TEST(BufReader, EmptyStringOk) {
    const std::vector<std::uint8_t> buf = {0};
    BufReader r(buf);
    EXPECT_EQ(r.cstring(), "");
    EXPECT_TRUE(r.empty());
}

TEST(BufWriter, EmbeddedNulInStringRejected) {
    BufWriter w;
    EXPECT_THROW(w.cstring(std::string_view("a\0b", 3)), WireError);
}

TEST(BufWriter, PatchU16) {
    BufWriter w;
    w.u16(0);
    w.u32(42);
    w.patch_u16(0, 0xbeef);
    BufReader r(w.data());
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 42u);
}

TEST(BufWriter, PatchOutOfRangeThrows) {
    BufWriter w;
    w.u8(1);
    EXPECT_THROW(w.patch_u16(0, 5), WireError);  // needs 2 bytes
}

TEST(BufReader, RemainingTracksConsumption) {
    const std::vector<std::uint8_t> buf = {1, 2, 3, 4, 5};
    BufReader r(buf);
    EXPECT_EQ(r.remaining(), 5u);
    (void)r.u8();
    EXPECT_EQ(r.remaining(), 4u);
    (void)r.u32();
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace sc
