#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace sc {
namespace {

TEST(Zipf, SamplesWithinPopulation) {
    ZipfSampler zipf(100, 0.8);
    Rng rng(1);
    for (int i = 0; i < 50'000; ++i) ASSERT_LT(zipf.sample(rng), 100u);
}

TEST(Zipf, SingleElementPopulation) {
    ZipfSampler zipf(1, 0.9);
    Rng rng(2);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, FrequenciesMatchPowerLaw) {
    // For Zipf(s) the frequency ratio of rank 0 to rank r is (r+1)^s.
    constexpr double s = 1.0;
    ZipfSampler zipf(1000, s);
    Rng rng(3);
    std::map<std::uint64_t, int> counts;
    constexpr int n = 500'000;
    for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
    const double f0 = counts[0];
    for (std::uint64_t r : {1u, 3u, 9u}) {
        const double expected_ratio = std::pow(static_cast<double>(r + 1), s);
        const double actual_ratio = f0 / counts[r];
        EXPECT_NEAR(actual_ratio, expected_ratio, expected_ratio * 0.15) << "rank " << r;
    }
}

TEST(Zipf, HigherExponentMoreSkewed) {
    Rng rng(4);
    const auto top_share = [&rng](double s) {
        ZipfSampler zipf(10'000, s);
        int top = 0;
        constexpr int n = 100'000;
        for (int i = 0; i < n; ++i)
            if (zipf.sample(rng) < 10) ++top;
        return static_cast<double>(top) / n;
    };
    EXPECT_GT(top_share(1.1), top_share(0.6));
}

class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, RankZeroIsModalAndAllRanksReachable) {
    const double s = GetParam();
    ZipfSampler zipf(50, s);
    Rng rng(5);
    std::vector<int> counts(50, 0);
    for (int i = 0; i < 200'000; ++i) ++counts[zipf.sample(rng)];
    EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
    for (int c : counts) EXPECT_GT(c, 0);
    // Monotone (statistically) along a geometric subsequence.
    EXPECT_GT(counts[0], counts[7]);
    EXPECT_GT(counts[7], counts[49]);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         ::testing::Values(0.5, 0.7, 0.8, 1.0, 1.2));

TEST(Pareto, SamplesWithinBounds) {
    BoundedParetoSampler pareto(1.1, 300.0, 1e7);
    Rng rng(6);
    for (int i = 0; i < 100'000; ++i) {
        const double x = pareto.sample(rng);
        ASSERT_GE(x, 300.0);
        ASSERT_LE(x, 1e7);
    }
}

TEST(Pareto, EmpiricalMeanMatchesAnalytic) {
    BoundedParetoSampler pareto(1.5, 1000.0, 1e6);
    Rng rng(7);
    double sum = 0.0;
    constexpr int n = 2'000'000;
    for (int i = 0; i < n; ++i) sum += pareto.sample(rng);
    EXPECT_NEAR(sum / n, pareto.mean(), pareto.mean() * 0.02);
}

TEST(Pareto, HeavyTailAlphaNearOne) {
    // With alpha=1.1 the mean is far above the median: heavy tail.
    BoundedParetoSampler pareto(1.1, 3000.0, 1e7);
    Rng rng(8);
    std::vector<double> xs(100'000);
    for (auto& x : xs) x = pareto.sample(rng);
    std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2),
                     xs.end());
    const double median = xs[xs.size() / 2];
    EXPECT_GT(pareto.mean(), 2.0 * median);
}

TEST(Pareto, CdfQuarterPoints) {
    // P(X <= x) = (1 - lo^a x^-a) / (1 - (lo/hi)^a); verify empirically.
    const double alpha = 2.0, lo = 10.0, hi = 1000.0;
    BoundedParetoSampler pareto(alpha, lo, hi);
    Rng rng(9);
    constexpr int n = 400'000;
    const auto cdf = [&](double x) {
        const double num = 1.0 - std::pow(lo, alpha) * std::pow(x, -alpha);
        const double den = 1.0 - std::pow(lo / hi, alpha);
        return num / den;
    };
    int below20 = 0, below100 = 0;
    for (int i = 0; i < n; ++i) {
        const double x = pareto.sample(rng);
        if (x <= 20.0) ++below20;
        if (x <= 100.0) ++below100;
    }
    EXPECT_NEAR(static_cast<double>(below20) / n, cdf(20.0), 0.01);
    EXPECT_NEAR(static_cast<double>(below100) / n, cdf(100.0), 0.01);
}

TEST(Exponential, MeanMatches) {
    Rng rng(10);
    double sum = 0.0;
    constexpr int n = 500'000;
    for (int i = 0; i < n; ++i) sum += sample_exponential(rng, 2.5);
    EXPECT_NEAR(sum / n, 2.5, 0.02);
}

TEST(Exponential, AlwaysPositive) {
    Rng rng(11);
    for (int i = 0; i < 10'000; ++i) ASSERT_GT(sample_exponential(rng, 0.001), 0.0);
}

TEST(DiscreteCdf, RespectsWeights) {
    Rng rng(12);
    const std::vector<double> cum = {1.0, 3.0, 6.0};  // weights 1, 2, 3
    std::vector<int> counts(3, 0);
    constexpr int n = 300'000;
    for (int i = 0; i < n; ++i) ++counts[sample_discrete_cdf(rng, cum)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 6, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 6, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 3.0 / 6, 0.01);
}

TEST(DiscreteCdf, SingleBucket) {
    Rng rng(13);
    const std::vector<double> cum = {5.0};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_discrete_cdf(rng, cum), 0u);
}

}  // namespace
}  // namespace sc
