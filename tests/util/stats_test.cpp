#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sc {
namespace {

TEST(OnlineStats, EmptyIsZero) {
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, KnownSmallSample) {
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleValue) {
    OnlineStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MergeEqualsSequential) {
    OnlineStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10 + i;
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
    OnlineStats a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b);  // no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);  // copy
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentiles, ExactQuantiles) {
    Percentiles p;
    for (int i = 1; i <= 100; ++i) p.add(i);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
    EXPECT_NEAR(p.quantile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(p.quantile(0.9), 90.1, 1e-9);
}

TEST(Percentiles, EmptyReturnsZero) {
    Percentiles p;
    EXPECT_EQ(p.quantile(0.5), 0.0);
    EXPECT_EQ(p.mean(), 0.0);
}

TEST(Percentiles, InterleavedAddAndQuery) {
    Percentiles p;
    p.add(10.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 10.0);
    p.add(20.0);
    p.add(0.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(p.mean(), 10.0);
}

TEST(Log2Histogram, BucketsAndRender) {
    Log2Histogram h;
    h.add(0.5);   // underflow
    h.add(1.0);   // [1,2)
    h.add(1.9);   // [1,2)
    h.add(1024);  // [1024, 2048)
    EXPECT_EQ(h.total(), 4u);
    const std::string r = h.render();
    EXPECT_NE(r.find("[0, 1) 1"), std::string::npos);
    EXPECT_NE(r.find("[1, 2) 2"), std::string::npos);
    EXPECT_NE(r.find("[1024, 2048) 1"), std::string::npos);
}

TEST(Percent, Formatting) {
    EXPECT_EQ(percent(1, 4), "25.00%");
    EXPECT_EQ(percent(1, 3, 1), "33.3%");
    EXPECT_EQ(percent(5, 0), "0.00%");  // guarded division
}

}  // namespace
}  // namespace sc
