#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

TEST(FormatBytes, Ranges) {
    EXPECT_EQ(format_bytes(0), "0 B");
    EXPECT_EQ(format_bytes(17), "17 B");
    EXPECT_EQ(format_bytes(1023), "1023 B");
    EXPECT_EQ(format_bytes(1024), "1.0 KB");
    EXPECT_EQ(format_bytes(1536), "1.5 KB");
    EXPECT_EQ(format_bytes(kMiB), "1.00 MB");
    EXPECT_EQ(format_bytes(kMiB * 5 / 2), "2.50 MB");
    EXPECT_EQ(format_bytes(kGiB), "1.00 GB");
    EXPECT_EQ(format_bytes(8 * kGiB), "8.00 GB");
}

TEST(FormatCount, ThousandsSeparators) {
    EXPECT_EQ(format_count(0), "0");
    EXPECT_EQ(format_count(999), "999");
    EXPECT_EQ(format_count(1000), "1,000");
    EXPECT_EQ(format_count(1234567), "1,234,567");
    EXPECT_EQ(format_count(1000000000ull), "1,000,000,000");
}

}  // namespace
}  // namespace sc
