#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a() == b()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 100'000; ++i) {
        const double x = rng.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf) {
    Rng rng(11);
    double sum = 0.0;
    constexpr int n = 200'000;
    for (int i = 0; i < n; ++i) sum += rng.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, NextBelowStaysInRange) {
    Rng rng(5);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 10'000; ++i) ASSERT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowOneAlwaysZero) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10'000; ++i) seen.insert(rng.next_below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRoughlyUniform) {
    Rng rng(17);
    constexpr std::uint64_t buckets = 10;
    constexpr int n = 100'000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < n; ++i) ++counts[rng.next_below(buckets)];
    for (int c : counts) EXPECT_NEAR(c, n / buckets, n / buckets * 0.1);
}

TEST(Rng, NextBoolProbability) {
    Rng rng(19);
    int heads = 0;
    constexpr int n = 100'000;
    for (int i = 0; i < n; ++i)
        if (rng.next_bool(0.3)) ++heads;
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.next_bool(0.0));
        EXPECT_TRUE(rng.next_bool(1.0));
    }
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng parent(31);
    Rng child = parent.fork();
    Rng parent2(31);
    Rng child2 = parent2.fork();
    // Forks are reproducible...
    for (int i = 0; i < 100; ++i) EXPECT_EQ(child(), child2());
    // ...and do not mirror the parent.
    Rng parent3(31);
    Rng child3 = parent3.fork();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (parent3() == child3()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMix64KnownExpansion) {
    // splitmix64 from the reference implementation: successive outputs
    // from a fixed state must be distinct and deterministic.
    std::uint64_t s = 0;
    const std::uint64_t a = splitmix64(s);
    const std::uint64_t b = splitmix64(s);
    std::uint64_t s2 = 0;
    EXPECT_EQ(splitmix64(s2), a);
    EXPECT_EQ(splitmix64(s2), b);
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sc
