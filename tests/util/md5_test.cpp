#include "util/md5.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sc {
namespace {

// RFC 1321 Appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
    EXPECT_EQ(md5("").hex(), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(md5("a").hex(), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(md5("abc").hex(), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(md5("message digest").hex(), "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(md5("abcdefghijklmnopqrstuvwxyz").hex(), "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789").hex(),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(
        md5("12345678901234567890123456789012345678901234567890123456789012345678901234567890")
            .hex(),
        "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalUpdatesMatchOneShot) {
    const std::string msg = "The quick brown fox jumps over the lazy dog";
    for (std::size_t split = 0; split <= msg.size(); ++split) {
        Md5 ctx;
        ctx.update(std::string_view(msg).substr(0, split));
        ctx.update(std::string_view(msg).substr(split));
        EXPECT_EQ(ctx.finish(), md5(msg)) << "split at " << split;
    }
}

TEST(Md5, ManySmallUpdates) {
    Md5 ctx;
    std::string msg;
    for (int i = 0; i < 1000; ++i) {
        const char c = static_cast<char>('a' + i % 26);
        ctx.update(std::string_view(&c, 1));
        msg.push_back(c);
    }
    EXPECT_EQ(ctx.finish(), md5(msg));
}

TEST(Md5, BlockBoundaryLengths) {
    // Lengths around the 64-byte block and 56-byte padding boundaries.
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 121u, 127u, 128u, 129u}) {
        const std::string msg(len, 'q');
        Md5 ctx;
        ctx.update(msg);
        const Md5Digest inc = ctx.finish();
        EXPECT_EQ(inc, md5(msg)) << "len " << len;
    }
}

TEST(Md5, ResetRestoresInitialState) {
    Md5 ctx;
    ctx.update("garbage that should be forgotten");
    ctx.reset();
    ctx.update("abc");
    EXPECT_EQ(ctx.finish().hex(), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, Word32ExtractionIsLittleEndian) {
    const Md5Digest d = md5("abc");
    // First 4 bytes of 900150983c... are 90 01 50 98 -> LE word 0x98500190.
    EXPECT_EQ(d.word32(0), 0x98500190u);
    EXPECT_EQ(d.word64(0) & 0xffffffffull, d.word32(0));
    EXPECT_EQ(d.word64(0) >> 32, d.word32(1));
    EXPECT_EQ(d.word64(1) & 0xffffffffull, d.word32(2));
    EXPECT_EQ(d.word64(1) >> 32, d.word32(3));
}

TEST(Md5, DifferentInputsDiffer) {
    EXPECT_NE(md5("http://a.com/x"), md5("http://a.com/y"));
    EXPECT_NE(md5("http://a.com/x"), md5("http://a.com/x "));
}

TEST(Md5, BinaryInputWithNulBytes) {
    const std::array<std::uint8_t, 5> data = {0x00, 0x01, 0x00, 0xff, 0x00};
    const Md5Digest d = md5(std::span<const std::uint8_t>(data));
    EXPECT_NE(d, md5(""));  // NULs are real input bytes
    EXPECT_EQ(d, md5(std::span<const std::uint8_t>(data)));
}

TEST(Md5, LongInput) {
    // "a" repeated 1,000,000 times — well-known extended vector.
    const std::string big(1'000'000, 'a');
    EXPECT_EQ(md5(big).hex(), "7707d6ae4e027c70eea2a935c2296f21");
}

}  // namespace
}  // namespace sc
