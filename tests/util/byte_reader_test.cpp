// ByteReader/ByteWriter — the checked-decode contract every untrusted-input
// parser now rests on. The saturating error latch is the load-bearing part:
// after the first short read, every later read must fail too, return zero,
// and never touch out-of-bounds memory.
#include "util/byte_reader.hpp"
#include "util/byte_writer.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

namespace {

using sc::util::ByteReader;
using sc::util::ByteWriter;

ByteReader reader_over(const std::vector<std::uint8_t>& v) {
    return ByteReader(std::span<const std::uint8_t>(v.data(), v.size()));
}

// --- happy-path reads -------------------------------------------------------

TEST(ByteReader, ReadsBothByteOrders) {
    const std::vector<std::uint8_t> buf = {0x01, 0x02, 0x03, 0x04, 0x05};
    ByteReader be = reader_over(buf);
    EXPECT_EQ(be.u8(), 0x01u);
    EXPECT_EQ(be.u16be(), 0x0203u);
    EXPECT_EQ(be.u16le(), 0x0504u);
    EXPECT_TRUE(be.ok());
    EXPECT_TRUE(be.empty());
}

TEST(ByteReader, ReadsWideIntegers) {
    const std::vector<std::uint8_t> buf = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                           0x07, 0x08};
    ByteReader be = reader_over(buf);
    EXPECT_EQ(be.u64be(), 0x0102030405060708ull);
    ByteReader le = reader_over(buf);
    EXPECT_EQ(le.u64le(), 0x0807060504030201ull);
    ByteReader mixed = reader_over(buf);
    EXPECT_EQ(mixed.u32be(), 0x01020304u);
    EXPECT_EQ(mixed.u32le(), 0x08070605u);
}

TEST(ByteReader, BytesAndTextViewWithoutCopy) {
    const std::string wire = "abcdef";
    ByteReader r = ByteReader::over(wire);
    const auto head = r.bytes(2);
    ASSERT_EQ(head.size(), 2u);
    EXPECT_EQ(head[0], 'a');
    EXPECT_EQ(r.text(3), "cde");
    EXPECT_EQ(r.pos(), 5u);
    EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteReader, CstringConsumesTerminator) {
    const std::vector<std::uint8_t> buf = {'u', 'r', 'l', 0x00, 0x42};
    ByteReader r = reader_over(buf);
    EXPECT_EQ(r.cstring_view(), "url");
    EXPECT_EQ(r.u8(), 0x42u);  // terminator consumed, next byte lines up
    EXPECT_TRUE(r.ok());
}

TEST(ByteReader, SkipAdvancesAndChecksBounds) {
    const std::vector<std::uint8_t> buf = {1, 2, 3};
    ByteReader r = reader_over(buf);
    r.skip(2);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.pos(), 2u);
    r.skip(2);  // only 1 byte left
    EXPECT_FALSE(r.ok());
}

// --- the saturating latch ---------------------------------------------------

TEST(ByteReader, ShortReadLatchesAndSaturates) {
    const std::vector<std::uint8_t> buf = {0xAA, 0xBB, 0xCC};
    ByteReader r = reader_over(buf);
    EXPECT_EQ(r.u32be(), 0u);  // 4 > 3: zero value, latched
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);  // pinned at the end
    // Every subsequent read keeps failing with zero values.
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_EQ(r.u16le(), 0u);
    EXPECT_TRUE(r.bytes(1).empty());
    EXPECT_TRUE(r.text(1).empty());
    EXPECT_FALSE(r.ok());
}

TEST(ByteReader, WideReadsZeroOnPartialAvailability) {
    // u64 composed of two u32 halves must not leak the half that fit.
    const std::vector<std::uint8_t> buf = {1, 2, 3, 4, 5, 6};
    ByteReader r = reader_over(buf);
    EXPECT_EQ(r.u64be(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(ByteReader, MissingNulLatches) {
    const std::vector<std::uint8_t> buf = {'n', 'o', 'n', 'u', 'l'};
    ByteReader r = reader_over(buf);
    EXPECT_EQ(r.cstring_view(), "");
    EXPECT_FALSE(r.ok());
}

TEST(ByteReader, CallerFailLatchesToo) {
    const std::vector<std::uint8_t> buf = {9, 9};
    ByteReader r = reader_over(buf);
    EXPECT_EQ(r.u8(), 9u);
    r.fail();  // semantic rejection (bad magic, field out of range, ...)
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0u);
}

TEST(ByteReader, EmptyInputFailsEveryRead) {
    ByteReader r = ByteReader::over(std::string_view{});
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_FALSE(r.ok());
}

// --- ByteWriter -------------------------------------------------------------

TEST(ByteWriter, RoundTripsThroughByteReader) {
    std::array<std::uint8_t, 15> out{};
    ByteWriter w{std::span<std::uint8_t>(out)};
    w.u8(0x7F);
    w.u16be(0xBEEF);
    w.u32le(0xCAFEBABE);
    w.u64le(0x0102030405060708ull);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.pos(), 15u);

    ByteReader r{std::span<const std::uint8_t>(out)};
    EXPECT_EQ(r.u8(), 0x7Fu);
    EXPECT_EQ(r.u16be(), 0xBEEFu);
    EXPECT_EQ(r.u32le(), 0xCAFEBABEu);
    EXPECT_EQ(r.u64le(), 0x0102030405060708ull);
    EXPECT_TRUE(r.ok());
}

TEST(ByteWriter, OverflowLatchesWithoutWriting) {
    std::array<std::uint8_t, 3> out{};
    ByteWriter w{std::span<std::uint8_t>(out)};
    w.u16be(0x1122);
    w.u32be(0xDEADBEEF);  // 4 > 1 remaining: latched, nothing written
    EXPECT_FALSE(w.ok());
    EXPECT_EQ(out[2], 0u);
    w.u8(0xFF);  // still latched
    EXPECT_FALSE(w.ok());
    EXPECT_EQ(out[2], 0u);
}

TEST(ByteWriter, BytesAndStringBacking) {
    std::string buf(5, '\0');
    ByteWriter w = ByteWriter::over(buf);
    w.bytes("ab");
    w.u8('c');
    w.u16le(0x6564);  // "de"
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(buf, "abcde");
}

TEST(ByteWriterAppend, VectorHelpersEmitNetworkOrder) {
    std::vector<std::uint8_t> out;
    sc::util::append_u8(out, 0x01);
    sc::util::append_u16be(out, 0x0203);
    sc::util::append_u32be(out, 0x04050607);
    const std::vector<std::uint8_t> want = {1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(out, want);
    sc::util::patch_u16be(out, 1, 0xAABB);
    EXPECT_EQ(out[1], 0xAAu);
    EXPECT_EQ(out[2], 0xBBu);
    // Out-of-range patch is a silent no-op, never a wild write.
    sc::util::patch_u16be(out, 6, 0xFFFF);
    EXPECT_EQ(out[6], 7u);
}

TEST(ByteWriterAppend, StringHelpersEmitLittleEndian) {
    std::string out;
    sc::util::append_u8(out, 0x01);
    sc::util::append_u16le(out, 0x0302);
    sc::util::append_u32le(out, 0x07060504);
    sc::util::append_u64le(out, 0x0F0E0D0C0B0A0908ull);
    ASSERT_EQ(out.size(), 15u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(static_cast<unsigned char>(out[i]), i + 1) << i;
}

}  // namespace
