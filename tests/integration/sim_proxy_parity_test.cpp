// Simulator/proxy parity: the trace simulators and the live MiniProxy
// drive the SAME core::ProtocolEngine, so for a deterministic workload the
// two must produce identical protocol tallies — hits, false hits (wasted
// queries), query messages, and update messages. This is the golden test
// that pins the refactor's central claim: the semantics measured by
// Figures 5-8 are, by construction, the semantics on the wire.
//
// Determinism requires taming the two sources of divergence a live
// federation adds:
//   * staleness — modify_probability = 0 removes version churn, so a
//     sibling that answers HIT always serves a fresh copy;
//   * update propagation — requests are replayed one at a time and the
//     replay waits for every sent update datagram to be applied before
//     the next request probes the replicas (the simulator's publishes are
//     instantaneous by construction).
// The proxies still run with --workers 4: successive requests land on
// different pipeline workers, so the engine's flush election and the
// journaled directory hooks are exercised off the main thread.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"
#include "sim/share_sim.hpp"
#include "trace/generator.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

std::uint64_t total(const std::vector<std::unique_ptr<MiniProxy>>& proxies,
                    std::uint64_t MiniProxyStats::*field) {
    std::uint64_t sum = 0;
    for (const auto& p : proxies) sum += p->stats().*field;
    return sum;
}

/// Wait until every update datagram any proxy has sent was applied by its
/// receiver (each datagram increments exactly one updates_received).
[[nodiscard]] bool settle_updates(const std::vector<std::unique_ptr<MiniProxy>>& proxies) {
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (total(proxies, &MiniProxyStats::updates_received) <
           total(proxies, &MiniProxyStats::updates_sent)) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(200us);
    }
    return true;
}

std::vector<Request> parity_trace() {
    TraceProfile profile = standard_profile(TraceKind::upisa, 0.05);
    profile.requests = 600;
    profile.clients = 12;
    profile.modify_probability = 0.0;  // no stales: HIT implies fresh
    profile.size_lo = 1'000;
    profile.size_hi = 20'000;  // keep loopback bodies small
    profile.seed = 1998;
    return TraceGenerator(profile).generate_all();
}

ShareSimResult parity_sim(const std::vector<Request>& trace, std::uint32_t num_proxies,
                          std::uint64_t cache_bytes) {
    ShareSimConfig sim_cfg;
    sim_cfg.num_proxies = num_proxies;
    sim_cfg.cache_bytes_per_proxy = cache_bytes;
    sim_cfg.scheme = SharingScheme::simple;
    sim_cfg.protocol = QueryProtocol::summary;
    sim_cfg.update_threshold = 0.0;  // publish every insert (replay settles each)
    return run_share_sim(sim_cfg, trace);
}

/// Replay `trace` through a live federation, settling updates after every
/// request, and check every protocol tally against the simulator's.
void expect_live_tallies_match(const std::vector<Request>& trace, const ShareSimResult& sim,
                               std::uint32_t num_proxies, std::uint64_t cache_bytes,
                               std::size_t cache_shards) {
    OriginServer origin({});
    std::vector<std::unique_ptr<MiniProxy>> proxies;
    proxies.reserve(num_proxies);
    for (std::uint32_t i = 0; i < num_proxies; ++i) {
        MiniProxyConfig cfg;
        cfg.id = i;  // ids == simulator indexes: identical probe order
        cfg.origin = origin.endpoint();
        cfg.cache_bytes = cache_bytes;
        cfg.mode = ShareMode::summary;
        cfg.update_threshold = 0.0;
        cfg.workers = 4;
        cfg.cache_shards = cache_shards;
        proxies.push_back(std::make_unique<MiniProxy>(cfg));
    }
    for (std::uint32_t i = 0; i < num_proxies; ++i)
        for (std::uint32_t j = 0; j < num_proxies; ++j)
            if (j != i)
                proxies[i]->add_sibling(j, proxies[j]->icp_endpoint(),
                                        proxies[j]->http_endpoint());
    for (auto& p : proxies) p->start();

    std::vector<TcpConnection> conns;
    conns.reserve(num_proxies);
    for (auto& p : proxies) conns.push_back(TcpConnection::connect(p->http_endpoint()));

    for (const Request& r : trace) {
        const std::uint32_t home = r.client_id % num_proxies;  // the simulator's mapping
        conns[home].write_all(format_request({false, false, r.url, r.version, r.size}));
        const auto line = conns[home].read_line();
        ASSERT_TRUE(line.has_value());
        const auto header = parse_response_header(*line);
        ASSERT_TRUE(header.has_value());
        conns[home].discard_exact(header->size);
        ASSERT_TRUE(settle_updates(proxies)) << "update datagram lost or unapplied";
    }

    // --- the tallies must agree exactly -----------------------------------
    EXPECT_EQ(total(proxies, &MiniProxyStats::requests), sim.requests);
    EXPECT_EQ(total(proxies, &MiniProxyStats::local_hits), sim.local_hits);
    EXPECT_EQ(total(proxies, &MiniProxyStats::remote_hits), sim.remote_hits);
    EXPECT_EQ(total(proxies, &MiniProxyStats::origin_fetches), sim.server_fetches);
    EXPECT_EQ(total(proxies, &MiniProxyStats::icp_queries_sent), sim.query_messages);
    // The false-hit tally: every query a summary provoked that the sibling
    // answered MISS (the per-request sim.false_hits is derived from these).
    EXPECT_EQ(total(proxies, &MiniProxyStats::false_hit_queries), sim.wasted_queries);
    EXPECT_EQ(total(proxies, &MiniProxyStats::updates_sent), sim.update_messages);
    EXPECT_EQ(origin.requests_served(), sim.server_fetches);

    conns.clear();
    for (auto& p : proxies) p->stop();
    origin.stop();
}

TEST(SimProxyParity, SummaryProtocolTalliesMatchSimulator) {
    constexpr std::uint32_t kProxies = 4;
    constexpr std::uint64_t kCacheBytes = 1ull * 1024 * 1024;
    const std::vector<Request> trace = parity_trace();
    const ShareSimResult sim = parity_sim(trace, kProxies, kCacheBytes);
    ASSERT_EQ(sim.remote_stale_hits, 0u);  // modify_probability = 0 held
    ASSERT_GT(sim.remote_hits, 0u);        // the workload actually shares
    ASSERT_GT(sim.update_messages, 0u);
    // Eviction order is part of this workload (1 MB caches churn), so the
    // live caches must stay shards = 1: per-shard LRU would evict in a
    // different order than the simulator's single list.
    expect_live_tallies_match(trace, sim, kProxies, kCacheBytes, /*cache_shards=*/1);
}

TEST(SimProxyParity, ShardedCacheKeepsTalliesWhenEvictionFree) {
    // The sharded request path must not change WHAT the protocol decides,
    // only how it locks. With caches large enough that nothing is ever
    // evicted, shard count cannot affect contents, so every tally must
    // still match the simulator exactly — any drift means sharding leaked
    // into protocol semantics (lost hooks, dropped inserts, probe skew).
    constexpr std::uint32_t kProxies = 4;
    constexpr std::uint64_t kCacheBytes = 64ull * 1024 * 1024;  // fits the whole trace
    const std::vector<Request> trace = parity_trace();
    const ShareSimResult sim = parity_sim(trace, kProxies, kCacheBytes);
    ASSERT_GT(sim.remote_hits, 0u);
    ASSERT_GT(sim.update_messages, 0u);
    expect_live_tallies_match(trace, sim, kProxies, kCacheBytes, /*cache_shards=*/4);
}

}  // namespace
}  // namespace sc
