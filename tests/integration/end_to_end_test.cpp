// Cross-layer integration: the same workload driven through (a) the
// trace-driven simulator and (b) the real-socket prototype must agree on
// the protocol-level outcomes (hit classes, query economy), which is the
// evidence that the simulator's accounting reflects the implemented wire
// protocol rather than an idealization of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"
#include "proto/replay_client.hpp"
#include "sim/share_sim.hpp"
#include "trace/generator.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

std::vector<Request> tiny_workload(std::uint32_t clients, std::size_t requests) {
    TraceProfile p = standard_profile(TraceKind::upisa, 0.01);
    p.clients = clients;
    p.requests = requests;
    p.shared_docs = 400;
    p.private_fraction = 0.1;
    p.size_hi = 20'000;  // keep socket transfers snappy
    p.size_lo = 64;
    auto trace = TraceGenerator(p).generate_all();
    return trace;
}

struct Testbed {
    std::unique_ptr<OriginServer> origin;
    std::vector<std::unique_ptr<MiniProxy>> proxies;

    Testbed(std::size_t n, ShareMode mode, double threshold) {
        origin = std::make_unique<OriginServer>(OriginServer::Config{});
        for (std::size_t i = 0; i < n; ++i) {
            MiniProxyConfig cfg;
            cfg.id = static_cast<NodeId>(i + 1);
            cfg.origin = origin->endpoint();
            cfg.mode = mode;
            cfg.cache_bytes = 2ull * 1024 * 1024;
            cfg.update_threshold = threshold;
            proxies.push_back(std::make_unique<MiniProxy>(cfg));
        }
        for (auto& p : proxies)
            for (auto& q : proxies)
                if (p != q) p->add_sibling(q->id(), q->icp_endpoint(), q->http_endpoint());
        for (auto& p : proxies) p->start();
    }

    ~Testbed() {
        for (auto& p : proxies) p->stop();
        origin->stop();
    }

    [[nodiscard]] std::vector<Endpoint> http_endpoints() const {
        std::vector<Endpoint> out;
        for (const auto& p : proxies) out.push_back(p->http_endpoint());
        return out;
    }
};

TEST(EndToEnd, ReplayTotalsAreConsistent) {
    const auto trace = tiny_workload(16, 600);
    Testbed bed(4, ShareMode::summary, 0.0);
    const auto stats = replay_trace(trace, bed.http_endpoints());
    EXPECT_EQ(stats.requests, trace.size());
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(stats.local_hits + stats.remote_hits + stats.misses, stats.requests);
    EXPECT_GT(stats.total_hit_ratio(), 0.05);
    // Origin served exactly the misses (every miss is one origin fetch).
    EXPECT_EQ(bed.origin->requests_served(), stats.misses);
}

TEST(EndToEnd, PrototypeMatchesSimulatorHitRatios) {
    const auto trace = tiny_workload(16, 600);

    // Simulator.
    ShareSimConfig sim_cfg;
    sim_cfg.num_proxies = 4;
    sim_cfg.cache_bytes_per_proxy = 2ull * 1024 * 1024;
    sim_cfg.scheme = SharingScheme::simple;
    sim_cfg.protocol = QueryProtocol::summary;
    sim_cfg.summary_kind = SummaryKind::bloom;
    sim_cfg.update_threshold = 0.0;
    const auto sim = run_share_sim(sim_cfg, trace);

    // Prototype.
    Testbed bed(4, ShareMode::summary, 0.0);
    const auto proto = replay_trace(trace, bed.http_endpoints());

    // Local hits are deterministic given the same LRU policy; remote hits
    // can differ slightly due to UDP update propagation timing.
    const double sim_local = sim.local_hit_ratio();
    const double proto_local =
        static_cast<double>(proto.local_hits) / static_cast<double>(proto.requests);
    EXPECT_NEAR(proto_local, sim_local, 0.02);
    const double proto_total = proto.total_hit_ratio();
    EXPECT_NEAR(proto_total, sim.total_hit_ratio(), 0.05);
}

TEST(EndToEnd, IcpAndSummaryAgreeOnHitsButNotOnTraffic) {
    const auto trace = tiny_workload(16, 500);

    std::uint64_t icp_queries = 0, sum_queries = 0;
    double icp_hits = 0, sum_hits = 0;
    {
        Testbed bed(4, ShareMode::icp, 0.0);
        const auto stats = replay_trace(trace, bed.http_endpoints());
        icp_hits = stats.total_hit_ratio();
        for (const auto& p : bed.proxies) icp_queries += p->stats().icp_queries_sent;
    }
    {
        Testbed bed(4, ShareMode::summary, 0.0);
        const auto stats = replay_trace(trace, bed.http_endpoints());
        sum_hits = stats.total_hit_ratio();
        for (const auto& p : bed.proxies) sum_queries += p->stats().icp_queries_sent;
    }
    EXPECT_NEAR(sum_hits, icp_hits, 0.05);
    EXPECT_LT(sum_queries, icp_queries / 3);  // the headline economy, live on sockets
}

TEST(EndToEnd, VersionChurnNeverServesWrongDocument) {
    // Correctness under modification: a version bump must never yield a hit
    // on the old version anywhere in the federation.
    TraceProfile p = standard_profile(TraceKind::upisa, 0.01);
    p.requests = 300;
    p.clients = 8;
    p.shared_docs = 30;  // heavy re-use
    p.private_fraction = 0.0;
    p.modify_probability = 0.2;  // aggressive churn
    p.size_lo = 64;
    p.size_hi = 4096;
    const auto trace = TraceGenerator(p).generate_all();

    Testbed bed(2, ShareMode::summary, 0.0);
    const auto stats = replay_trace(trace, bed.http_endpoints());
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(stats.requests, trace.size());
    // The protocol guarantees errors of the two tolerable kinds only; the
    // replay client checked every body size implicitly via discard_exact.
    SUCCEED();
}

TEST(EndToEnd, FalseHitsAreWastedQueriesNotWrongAnswers) {
    // Force Bloom collisions with a minuscule filter: false hits must only
    // cost extra queries; every reply remains correct.
    auto origin = std::make_unique<OriginServer>(OriginServer::Config{});
    std::vector<std::unique_ptr<MiniProxy>> proxies;
    for (int i = 0; i < 2; ++i) {
        MiniProxyConfig cfg;
        cfg.id = static_cast<NodeId>(i + 1);
        cfg.origin = origin->endpoint();
        cfg.mode = ShareMode::summary;
        cfg.update_threshold = 0.0;
        cfg.cache_bytes = 64 * 1024;
        cfg.bloom.load_factor = 1;  // absurdly dense: lots of false positives
        proxies.push_back(std::make_unique<MiniProxy>(cfg));
    }
    for (auto& p : proxies)
        for (auto& q : proxies)
            if (p != q) p->add_sibling(q->id(), q->icp_endpoint(), q->http_endpoint());
    for (auto& p : proxies) p->start();

    const auto trace = tiny_workload(8, 250);
    std::vector<Endpoint> eps;
    for (const auto& p : proxies) eps.push_back(p->http_endpoint());
    const auto stats = replay_trace(trace, eps);
    EXPECT_EQ(stats.errors, 0u);
    std::uint64_t false_hits = 0;
    for (const auto& p : proxies) false_hits += p->stats().false_hit_queries;
    EXPECT_GT(false_hits, 0u);  // the dense filter must have lied sometimes
    for (auto& p : proxies) p->stop();
    origin->stop();
}

}  // namespace
}  // namespace sc
