// Warm restart (the tentpole acceptance pin): kill a proxy with a disk
// tier, restart it on the same segment directory, and the recovered node
// must (a) hold the same directory it held before the kill and (b)
// re-advertise a TRUTHFUL summary — a fresh sibling that receives the
// rebuilt filter predicts every recovered URL and turns each one into a
// remote hit over real sockets.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"
#include "proto/replay_client.hpp"
#include "store/segment_log.hpp"
#include "trace/request.hpp"

namespace sc {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// One request per distinct URL, everything from one client (so a replay
/// against a single endpoint drives every request through that proxy).
std::vector<Request> distinct_urls(std::size_t n) {
    std::vector<Request> trace;
    for (std::size_t i = 0; i < n; ++i) {
        Request r;
        r.client_id = 0;
        r.url = "http://warm.test/d" + std::to_string(i);
        r.size = 200 + (i % 7) * 100;
        r.version = 1;
        trace.push_back(std::move(r));
    }
    return trace;
}

MiniProxyConfig proxy_config(NodeId id, const Endpoint& origin, const std::string& disk_dir) {
    MiniProxyConfig cfg;
    cfg.id = id;
    cfg.origin = origin;
    cfg.mode = ShareMode::summary;
    cfg.update_threshold = 0.0;
    cfg.cache_bytes = 2ull * 1024 * 1024;
    cfg.disk_dir = disk_dir;
    return cfg;
}

void wire(MiniProxy& a, MiniProxy& b) {
    a.add_sibling(b.id(), b.icp_endpoint(), b.http_endpoint());
    b.add_sibling(a.id(), a.icp_endpoint(), a.http_endpoint());
}

[[nodiscard]] bool wait_for(const std::function<bool()>& pred,
                            std::chrono::milliseconds deadline = 5s) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
        if (pred()) return true;
        std::this_thread::sleep_for(10ms);
    }
    return pred();
}

class WarmRestartTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("sc_warm_restart_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
};

TEST_F(WarmRestartTest, KillAndRestartRebuildsDirectoryAndSummary) {
    constexpr std::size_t kDocs = 80;
    const auto trace = distinct_urls(kDocs);
    OriginServer origin{OriginServer::Config{}};

    std::size_t pre_kill_docs = 0;
    std::uint64_t pre_kill_bytes = 0;
    {
        // Phase 1: populate proxy A through real sockets, sibling attached.
        auto a = std::make_unique<MiniProxy>(proxy_config(1, origin.endpoint(), dir_.string()));
        auto b = std::make_unique<MiniProxy>(proxy_config(2, origin.endpoint(), ""));
        ASSERT_TRUE(a->has_disk_tier());
        ASSERT_FALSE(b->has_disk_tier());
        EXPECT_EQ(a->recovered_documents(), 0u);  // fresh directory
        wire(*a, *b);
        a->start();
        b->start();
        const auto stats = replay_trace(trace, {a->http_endpoint()});
        ASSERT_EQ(stats.errors, 0u);
        ASSERT_EQ(stats.misses, kDocs);  // every URL distinct: all origin fetches
        pre_kill_docs = a->cached_documents();
        pre_kill_bytes = a->cached_bytes();
        ASSERT_EQ(pre_kill_docs, kDocs);
        a->stop();
        b->stop();
    }  // A destroyed — the disk directory is all that survives

    // Phase 2: A' rises on the same segment directory; B' is a brand-new
    // sibling that has never heard an update from the old incarnation.
    auto a2 = std::make_unique<MiniProxy>(proxy_config(1, origin.endpoint(), dir_.string()));
    auto b2 = std::make_unique<MiniProxy>(proxy_config(2, origin.endpoint(), ""));
    EXPECT_EQ(a2->recovered_documents(), kDocs);
    EXPECT_EQ(a2->cached_documents(), pre_kill_docs);
    EXPECT_EQ(a2->cached_bytes(), pre_kill_bytes);
    wire(*a2, *b2);
    a2->start();
    b2->start();

    // Every recovered document is servable locally after the restart.
    const auto local = replay_trace(trace, {a2->http_endpoint()});
    EXPECT_EQ(local.errors, 0u);
    EXPECT_EQ(local.local_hits, kDocs);

    // The rebuilt counting filter is the node's advertised summary:
    // broadcast it and the fresh sibling must predict every recovered URL.
    a2->broadcast_full_summary();
    ASSERT_TRUE(wait_for([&] { return b2->stats().updates_received > 0; }))
        << "B' never received the recovered summary";
    const auto remote = replay_trace(trace, {b2->http_endpoint()});
    EXPECT_EQ(remote.errors, 0u);
    EXPECT_EQ(remote.remote_hits, kDocs)
        << "the rebuilt summary failed to predict some recovered documents";
    EXPECT_EQ(remote.misses, 0u);

    a2->stop();
    b2->stop();
    origin.stop();
}

TEST_F(WarmRestartTest, TornTailIsDroppedNotFatal) {
    constexpr std::size_t kDocs = 12;
    const auto trace = distinct_urls(kDocs);
    OriginServer origin{OriginServer::Config{}};
    {
        MiniProxy a(proxy_config(1, origin.endpoint(), dir_.string()));
        a.start();
        const auto stats = replay_trace(trace, {a.http_endpoint()});
        ASSERT_EQ(stats.errors, 0u);
        ASSERT_EQ(a.cached_documents(), kDocs);
        a.stop();
    }
    // Simulate a crash mid-append: half a record at the tail of the
    // largest segment. Recovery must truncate it and keep everything else.
    fs::path victim;
    std::uintmax_t biggest = 0;
    for (const auto& de : fs::directory_iterator(dir_)) {
        if (fs::file_size(de.path()) > biggest) {
            biggest = fs::file_size(de.path());
            victim = de.path();
        }
    }
    ASSERT_FALSE(victim.empty());
    {
        std::string torn;
        store::encode_record(torn, store::Record{store::RecordType::insert, 1u << 20, 500, 9,
                                                 "http://warm.test/torn"});
        torn.resize(torn.size() - 3);
        std::ofstream out(victim, std::ios::binary | std::ios::app);
        out.write(torn.data(), static_cast<std::streamsize>(torn.size()));
    }

    MiniProxy a2(proxy_config(1, origin.endpoint(), dir_.string()));
    EXPECT_EQ(a2.recovered_documents(), kDocs);  // the torn record, and only it, is gone
    a2.start();
    const auto stats = replay_trace(trace, {a2.http_endpoint()});
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(stats.local_hits, kDocs);
    a2.stop();
    origin.stop();
}

TEST_F(WarmRestartTest, DiskTierDisabledMeansNothingToRecover) {
    OriginServer origin{OriginServer::Config{}};
    MiniProxy a(proxy_config(1, origin.endpoint(), ""));
    EXPECT_FALSE(a.has_disk_tier());
    EXPECT_EQ(a.recovered_documents(), 0u);
    origin.stop();
}

}  // namespace
}  // namespace sc
