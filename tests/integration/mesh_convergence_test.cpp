// The acceptance scenario for loss-tolerant summary distribution: a
// 4-proxy mesh under 25% datagram loss (plus duplication and reordering),
// with one proxy killed and restarted mid-run and one late joiner that
// knows a single peer. Every surviving replica must converge — each proxy
// predicting every other proxy's documents — through gap detection,
// DIRREQ resync, and dynamic membership alone.
//
// Scale knob: SC_CONVERGENCE_URLS overrides the per-proxy document count
// (CI runs the TSan build at reduced scale).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

std::size_t urls_per_proxy() {
    if (const char* env = std::getenv("SC_CONVERGENCE_URLS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0) return static_cast<std::size_t>(n);
    }
    return 25;
}

MiniProxyConfig mesh_cfg(NodeId id, Endpoint origin) {
    MiniProxyConfig cfg;
    cfg.id = id;
    cfg.origin = origin;
    cfg.mode = ShareMode::summary;
    cfg.update_threshold = 0.0;
    cfg.keepalive_interval = 100ms;
    cfg.liveness_strikes = 4;
    cfg.resync_interval = 100ms;
    // The hostile network: a quarter of all datagrams vanish, some arrive
    // twice, some out of order. Seeded per node so runs replay exactly.
    cfg.udp_faults.loss = 0.25;
    cfg.udp_faults.duplicate = 0.10;
    cfg.udp_faults.reorder = 0.10;
    cfg.udp_faults.seed = 1000 + id;
    return cfg;
}

HttpLiteStatus get(MiniProxy& p, const std::string& url) {
    TcpConnection c = TcpConnection::connect(p.http_endpoint());
    c.write_all(format_request({false, false, url, 0, 100}));
    const auto header = parse_response_header(*c.read_line());
    EXPECT_TRUE(header.has_value());
    c.discard_exact(header->size);
    return header->status;
}

std::string doc_url(NodeId owner, std::size_t i) {
    return "http://node" + std::to_string(owner) + "/doc" + std::to_string(i);
}

TEST(MeshConvergence, LossyMeshWithRestartAndLateJoinerConverges) {
    const std::size_t kUrls = urls_per_proxy();
    OriginServer origin({});

    // Proxies 1-3 form the initial mesh (full sibling lists); proxy 4
    // joins late knowing only proxy 1.
    std::vector<std::unique_ptr<MiniProxy>> mesh;
    for (NodeId id = 1; id <= 3; ++id)
        mesh.push_back(std::make_unique<MiniProxy>(mesh_cfg(id, origin.endpoint())));
    for (auto& p : mesh)
        for (auto& q : mesh)
            if (p != q) p->add_sibling(q->id(), q->icp_endpoint(), q->http_endpoint());
    for (auto& p : mesh) p->start();

    for (std::size_t i = 0; i < kUrls; ++i)
        for (auto& p : mesh) ASSERT_EQ(get(*p, doc_url(p->id(), i)), HttpLiteStatus::miss);

    // Kill proxy 2 mid-run and bring it back on the same ports with an
    // empty cache: a fresh boot id, a reset sequence space, and stale
    // replicas of it everywhere.
    const std::uint16_t icp2 = mesh[1]->icp_endpoint().port;
    const std::uint16_t http2 = mesh[1]->http_endpoint().port;
    mesh[1]->stop();
    mesh[1].reset();
    auto cfg2 = mesh_cfg(2, origin.endpoint());
    cfg2.icp_port = icp2;
    cfg2.http_port = http2;
    mesh[1] = std::make_unique<MiniProxy>(cfg2);
    mesh[1]->add_sibling(1, mesh[0]->icp_endpoint(), mesh[0]->http_endpoint());
    mesh[1]->add_sibling(3, mesh[2]->icp_endpoint(), mesh[2]->http_endpoint());
    mesh[1]->start();
    // It re-caches its documents plus one new one — churn the mesh must
    // relearn through the restart.
    for (std::size_t i = 0; i < kUrls; ++i)
        (void)get(*mesh[1], doc_url(2, i));
    ASSERT_EQ(get(*mesh[1], doc_url(2, kUrls)), HttpLiteStatus::miss);

    // The late joiner: knows only proxy 1; everyone else must learn it
    // (and it them) through DIRREQ/SECHO propagation.
    mesh.push_back(std::make_unique<MiniProxy>(mesh_cfg(4, origin.endpoint())));
    mesh[3]->add_sibling(1, mesh[0]->icp_endpoint(), mesh[0]->http_endpoint());
    mesh[3]->start();
    for (std::size_t i = 0; i < kUrls; ++i)
        ASSERT_EQ(get(*mesh[3], doc_url(4, i)), HttpLiteStatus::miss);

    // Node 4 introduced itself only to node 1; DIRREQ introductions
    // propagate the membership from there, so EVERY ordered pair must
    // converge: each proxy's replica predicts every document every other
    // proxy cached — under sustained 25% loss, through the restart.
    const auto all_pairs_converged = [&] {
        for (const auto& p : mesh) {
            for (const auto& q : mesh) {
                if (p == q) continue;
                const std::size_t docs = q->id() == 2 ? kUrls + 1 : kUrls;
                for (std::size_t i = 0; i < docs; ++i)
                    if (!p->sibling_replica_predicts(q->id(), doc_url(q->id(), i)))
                        return false;
            }
        }
        return true;
    };
    const auto deadline = std::chrono::steady_clock::now() + 20s;
    while (!all_pairs_converged() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(100ms);
    EXPECT_TRUE(all_pairs_converged());

    // Converged replicas are usable under loss: the document body rides
    // TCP, but the ICP probe preceding the fetch rides the lossy UDP
    // mesh, so any single probe can time out and fall back to the
    // origin. Each (requester, document) pair is one independent shot —
    // a timed-out miss caches the document locally, burning that pair —
    // and one sibling-to-sibling hit proves the path.
    bool remote_hit = false;
    for (auto* requester : {mesh[0].get(), mesh[2].get(), mesh[3].get()}) {
        for (std::size_t i = 0; i <= kUrls && !remote_hit; ++i)
            remote_hit = get(*requester, doc_url(2, i)) == HttpLiteStatus::remote_hit;
        if (remote_hit) break;
    }
    EXPECT_TRUE(remote_hit);

    // The fault injector really was in play.
    std::uint64_t resyncs = 0;
    for (const auto& p : mesh) resyncs += p->stats().resync_requests_sent;
    EXPECT_GE(resyncs, 1u);

    for (auto& p : mesh) p->stop();
    origin.stop();
}

}  // namespace
}  // namespace sc
