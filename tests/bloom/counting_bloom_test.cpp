#include "bloom/counting_bloom_filter.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sc {
namespace {

HashSpec spec(std::uint32_t bits = 4096) { return HashSpec{4, 32, bits}; }

TEST(CountingBloom, InsertThenContains) {
    CountingBloomFilter f(spec());
    f.insert("http://a/1");
    EXPECT_TRUE(f.may_contain("http://a/1"));
    EXPECT_TRUE(f.bits().may_contain("http://a/1"));
}

TEST(CountingBloom, EraseRemoves) {
    CountingBloomFilter f(spec(1 << 16));
    f.insert("only-key");
    f.erase("only-key");
    EXPECT_FALSE(f.may_contain("only-key"));
    EXPECT_EQ(f.bits().popcount(), 0u);
}

TEST(CountingBloom, EraseOfOneKeyKeepsOthers) {
    CountingBloomFilter f(spec(1 << 16));
    std::vector<std::string> keys;
    for (int i = 0; i < 500; ++i) keys.push_back("k" + std::to_string(i));
    for (const auto& k : keys) f.insert(k);
    for (int i = 0; i < 250; ++i) f.erase(keys[static_cast<std::size_t>(i)]);
    // Deletions must never produce false negatives for remaining members.
    for (int i = 250; i < 500; ++i)
        ASSERT_TRUE(f.may_contain(keys[static_cast<std::size_t>(i)])) << i;
}

TEST(CountingBloom, DuplicateInsertNeedsTwoErases) {
    CountingBloomFilter f(spec(1 << 16));
    f.insert("dup");
    f.insert("dup");
    f.erase("dup");
    EXPECT_TRUE(f.may_contain("dup"));  // one reference left
    f.erase("dup");
    EXPECT_FALSE(f.may_contain("dup"));
}

TEST(CountingBloom, DeltaLogRecordsTransitionsOnly) {
    CountingBloomFilter f(spec(1 << 16));
    f.insert("a");                      // 4 bits 0->1 (barring collisions)
    const auto delta1 = f.take_delta();
    EXPECT_GE(delta1.size(), 1u);
    EXPECT_LE(delta1.size(), 4u);
    for (const auto& flip : delta1.flips()) EXPECT_TRUE(flip.value);

    f.insert("a");  // counters 1->2: no bit transitions
    auto delta2 = f.take_delta();
    EXPECT_TRUE(delta2.empty());

    f.erase("a");  // counters 2->1: still no transitions
    EXPECT_TRUE(f.take_delta().empty());

    f.erase("a");  // counters 1->0: bits turn off
    const auto delta3 = f.take_delta();
    EXPECT_EQ(delta3.size(), delta1.size());
    for (const auto& flip : delta3.flips()) EXPECT_FALSE(flip.value);
}

TEST(CountingBloom, TakeDeltaCompactsToggles) {
    CountingBloomFilter f(spec(1 << 16));
    f.insert("x");
    f.erase("x");
    // Bits went 0->1->0 between publishes: compaction leaves the final
    // value per index (value=false records).
    const auto delta = f.take_delta();
    for (const auto& flip : delta.flips()) EXPECT_FALSE(flip.value);
    // Applying the compacted delta to a replica that saw neither change
    // leaves it correctly empty-equivalent for "x": off bits stay off.
    BloomFilter replica(spec(1 << 16));
    for (const auto& flip : delta.flips()) replica.set_bit(flip.index, flip.value);
    EXPECT_FALSE(replica.may_contain("x"));
}

TEST(CountingBloom, SaturatedCounterIsPinned) {
    CountingBloomFilter f(spec(64), /*counter_bits=*/2);  // max = 3
    // Insert one key five times: counters saturate at 3 and record overflows.
    for (int i = 0; i < 5; ++i) f.insert("k");
    EXPECT_GT(f.overflow_events(), 0u);
    EXPECT_LE(f.max_counter(), 3);
    // Erase five times: pinned counters never decrement, so the key still
    // appears present (the designed fail-safe direction).
    for (int i = 0; i < 5; ++i) f.erase("k");
    EXPECT_TRUE(f.may_contain("k"));
}

TEST(CountingBloom, UnderflowIsCountedNotFatal) {
    CountingBloomFilter f(spec(1 << 16));
    f.erase("never-inserted");
    EXPECT_GT(f.underflow_events(), 0u);
    EXPECT_EQ(f.bits().popcount(), 0u);
}

TEST(CountingBloom, FourBitCountersSufficeAtPaperLoads) {
    // Paper Section V-C: with load factor 16 and k=4, Pr[any counter >= 16]
    // is minuscule. Empirically the max counter stays well below 15.
    constexpr int n = 4096;
    CountingBloomFilter f(HashSpec{4, 32, 16 * n}, 4);
    for (int i = 0; i < n; ++i) f.insert("doc" + std::to_string(i));
    EXPECT_EQ(f.overflow_events(), 0u);
    EXPECT_LT(f.max_counter(), 9);  // theory: max ~ O(log m / log log m), ~5
}

TEST(CountingBloom, BitsViewTracksCounters) {
    CountingBloomFilter f(spec(1 << 12));
    for (int i = 0; i < 200; ++i) f.insert("d" + std::to_string(i));
    for (std::uint32_t b = 0; b < (1u << 12); ++b)
        ASSERT_EQ(f.bits().test_bit(b), f.counter(b) > 0) << "bit " << b;
}

TEST(CountingBloom, ClearResetsEverything) {
    CountingBloomFilter f(spec());
    f.insert("a");
    f.insert("b");
    f.clear();
    EXPECT_FALSE(f.may_contain("a"));
    EXPECT_EQ(f.bits().popcount(), 0u);
    EXPECT_TRUE(f.take_delta().empty());
    EXPECT_EQ(f.overflow_events(), 0u);
    EXPECT_EQ(f.max_counter(), 0);
}

TEST(CountingBloom, ChurnMatchesReferenceSet) {
    // Long insert/erase churn: the filter must agree with an exact set on
    // membership of all *current* members (no false negatives, property).
    CountingBloomFilter f(HashSpec{4, 32, 1 << 16});
    std::vector<std::string> live;
    for (int round = 0; round < 2000; ++round) {
        const std::string key = "u" + std::to_string(round % 700);
        const bool is_live =
            std::find(live.begin(), live.end(), key) != live.end();
        if (is_live) {
            f.erase(key);
            live.erase(std::find(live.begin(), live.end(), key));
        } else {
            f.insert(key);
            live.push_back(key);
        }
    }
    for (const auto& k : live) ASSERT_TRUE(f.may_contain(k));
}

}  // namespace
}  // namespace sc
