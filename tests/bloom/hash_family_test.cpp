#include "bloom/hash_family.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/bloom_math.hpp"

namespace sc {
namespace {

const HashSpec kSpec{4, 32, 1 << 16};

class HashFamilyTest : public ::testing::TestWithParam<HashFamily> {};

TEST_P(HashFamilyTest, DeterministicAndInRange) {
    const auto hasher = make_hasher(GetParam());
    ASSERT_NE(hasher, nullptr);
    for (int i = 0; i < 200; ++i) {
        const std::string key = "http://h" + std::to_string(i) + "/d";
        const auto a = (*hasher)(key, kSpec);
        const auto b = (*hasher)(key, kSpec);
        ASSERT_EQ(a, b);
        ASSERT_EQ(a.size(), kSpec.function_num);
        for (std::uint32_t x : a) ASSERT_LT(x, kSpec.table_bits);
    }
}

TEST_P(HashFamilyTest, FalsePositiveRateNearTheory) {
    // Any decent family must land within ~2x of the analytic FP rate.
    const auto hasher = make_hasher(GetParam());
    constexpr int n = 4096;
    const HashSpec spec{4, 32, 8 * n};
    BloomFilter filter(spec);
    for (int i = 0; i < n; ++i)
        for (std::uint32_t idx : (*hasher)("member/" + std::to_string(i), spec))
            filter.set_bit(idx, true);
    int fp = 0;
    constexpr int probes = 60'000;
    for (int i = 0; i < probes; ++i) {
        const auto idx = (*hasher)("probe/" + std::to_string(i), spec);
        if (filter.may_contain(std::span<const std::uint32_t>(idx))) ++fp;
    }
    const double measured = static_cast<double>(fp) / probes;
    const double theory = bloom_fp_exact(8.0 * n, n, 4);
    EXPECT_LT(measured, theory * 2.0) << hash_family_name(GetParam());
    EXPECT_GT(measured, theory * 0.4) << hash_family_name(GetParam());
}

TEST_P(HashFamilyTest, DistinctKeysRarelyShareAllIndexes) {
    const auto hasher = make_hasher(GetParam());
    std::set<std::vector<std::uint32_t>> seen;
    constexpr int keys = 5000;
    for (int i = 0; i < keys; ++i) seen.insert((*hasher)("k" + std::to_string(i), kSpec));
    EXPECT_GT(seen.size(), keys - 5u);
}

INSTANTIATE_TEST_SUITE_P(Families, HashFamilyTest,
                         ::testing::Values(HashFamily::md5, HashFamily::linear,
                                           HashFamily::rabin),
                         [](const auto& info) { return hash_family_name(info.param); });

TEST(HashFamilies, Md5FamilyMatchesWireRecipe) {
    // The md5 strategy must agree exactly with the SC-ICP wire derivation.
    const auto hasher = make_hasher(HashFamily::md5);
    const std::string url = "http://wire.example.com/check";
    EXPECT_EQ((*hasher)(url, kSpec), bloom_indexes(url, kSpec));
}

TEST(RabinFingerprint, BasicProperties) {
    EXPECT_EQ(rabin_fingerprint(""), 0u);
    EXPECT_NE(rabin_fingerprint("a"), rabin_fingerprint("b"));
    EXPECT_NE(rabin_fingerprint("ab"), rabin_fingerprint("ba"));
    EXPECT_EQ(rabin_fingerprint("http://x/y"), rabin_fingerprint("http://x/y"));
}

TEST(RabinFingerprint, IsLinearInGf2) {
    // Rabin fingerprints are linear over GF(2): f(a XOR b) = f(a) XOR f(b)
    // for equal-length strings XORed bytewise (with f(0^n) folded in).
    const std::string a = "abcdefgh";
    const std::string b = "12345678";
    std::string axb(a.size(), '\0');
    for (std::size_t i = 0; i < a.size(); ++i)
        axb[i] = static_cast<char>(a[i] ^ b[i]);
    const std::string zeros(a.size(), '\0');
    EXPECT_EQ(rabin_fingerprint(axb) ^ rabin_fingerprint(zeros),
              rabin_fingerprint(a) ^ rabin_fingerprint(b));
}

TEST(Fnv1a32, KnownVectors) {
    EXPECT_EQ(fnv1a32(""), 0x811c9dc5u);
    EXPECT_EQ(fnv1a32("a"), 0xe40c292cu);
    EXPECT_EQ(fnv1a32("foobar"), 0xbf9cf968u);
}

TEST(HashFamilies, Names) {
    EXPECT_STREQ(hash_family_name(HashFamily::md5), "md5");
    EXPECT_STREQ(hash_family_name(HashFamily::linear), "linear");
    EXPECT_STREQ(hash_family_name(HashFamily::rabin), "rabin");
}

}  // namespace
}  // namespace sc
