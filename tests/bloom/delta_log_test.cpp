#include "bloom/delta_log.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

TEST(BitFlip, EncodeDecodeRoundTrip) {
    for (const BitFlip f : {BitFlip{0, false}, BitFlip{0, true}, BitFlip{12345, true},
                            BitFlip{kBitFlipIndexMask, false}, BitFlip{kBitFlipIndexMask, true}}) {
        EXPECT_EQ(decode_bit_flip(encode_bit_flip(f)), f);
    }
}

TEST(BitFlip, MsbCarriesValue) {
    EXPECT_EQ(encode_bit_flip({5, true}), 0x80000005u);
    EXPECT_EQ(encode_bit_flip({5, false}), 0x00000005u);
}

TEST(DeltaLog, RecordsInOrder) {
    DeltaLog log;
    log.record({1, true});
    log.record({2, true});
    log.record({3, false});
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log.flips()[0], (BitFlip{1, true}));
    EXPECT_EQ(log.flips()[2], (BitFlip{3, false}));
}

TEST(DeltaLog, CompactKeepsLastValuePerIndex) {
    DeltaLog log;
    log.record({7, true});
    log.record({8, true});
    log.record({7, false});  // supersedes the first record
    const std::size_t removed = log.compact();
    EXPECT_EQ(removed, 1u);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.flips()[0], (BitFlip{7, false}));  // first-touch order kept
    EXPECT_EQ(log.flips()[1], (BitFlip{8, true}));
}

TEST(DeltaLog, CompactOfDistinctIndexesIsNoop) {
    DeltaLog log;
    for (std::uint32_t i = 0; i < 100; ++i) log.record({i, i % 2 == 0});
    EXPECT_EQ(log.compact(), 0u);
    EXPECT_EQ(log.size(), 100u);
}

TEST(DeltaLog, EncodeMatchesRecords) {
    DeltaLog log;
    log.record({10, true});
    log.record({20, false});
    const auto wire = log.encode();
    ASSERT_EQ(wire.size(), 2u);
    EXPECT_EQ(decode_bit_flip(wire[0]), (BitFlip{10, true}));
    EXPECT_EQ(decode_bit_flip(wire[1]), (BitFlip{20, false}));
}

TEST(DeltaLog, ClearEmpties) {
    DeltaLog log;
    log.record({1, true});
    log.clear();
    EXPECT_TRUE(log.empty());
    EXPECT_TRUE(log.encode().empty());
}

TEST(DeltaLog, AbsoluteValuesMakeReplayIdempotent) {
    // The design rationale (Section VI-A): records carry absolute bit
    // values so applying an update twice — duplicated datagram — is safe.
    DeltaLog log;
    log.record({42, true});
    log.record({43, false});
    std::vector<bool> bits(64, false);
    bits[43] = true;
    const auto apply = [&] {
        for (std::uint32_t rec : log.encode()) {
            const BitFlip f = decode_bit_flip(rec);
            bits[f.index] = f.value;
        }
    };
    apply();
    apply();  // duplicate delivery
    EXPECT_TRUE(bits[42]);
    EXPECT_FALSE(bits[43]);
}

}  // namespace
}  // namespace sc
