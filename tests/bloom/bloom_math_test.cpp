#include "bloom/bloom_math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sc {
namespace {

TEST(BloomMath, ExactAndApproxAgreeForLargeTables) {
    for (unsigned k : {1u, 2u, 4u, 8u}) {
        const double exact = bloom_fp_exact(1e6, 1e5, k);
        const double approx = bloom_fp_approx(1e6, 1e5, k);
        EXPECT_NEAR(exact, approx, exact * 0.01) << "k=" << k;
    }
}

TEST(BloomMath, ZeroKeysMeansZeroFalsePositives) {
    EXPECT_EQ(bloom_fp_exact(1000, 0, 4), 0.0);
    EXPECT_EQ(bloom_fp_approx(1000, 0, 4), 0.0);
}

TEST(BloomMath, FpDecreasesWithMoreBits) {
    double prev = 1.0;
    for (double bits_per_entry : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        const double p = bloom_fp_approx(bits_per_entry, 1.0, 4);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST(BloomMath, OptimalKRealFormula) {
    EXPECT_NEAR(bloom_optimal_k_real(10, 1), 10 * std::log(2.0), 1e-12);
    EXPECT_NEAR(bloom_optimal_k_real(16, 2), 8 * std::log(2.0), 1e-12);
}

TEST(BloomMath, OptimalIntegralKBeatsNeighbours) {
    for (double r : {4.0, 8.0, 10.0, 16.0, 32.0}) {
        const unsigned k = bloom_optimal_k(r, 1.0);
        const double best = bloom_fp_approx(r, 1.0, k);
        if (k > 1) {
            EXPECT_LE(best, bloom_fp_approx(r, 1.0, k - 1));
        }
        EXPECT_LE(best, bloom_fp_approx(r, 1.0, k + 1));
    }
}

// Section V-C quotes 1.2% at k=4 for 10 bits/entry, and 0.9% for "the
// optimum case of five hash functions". The true integral optimum at
// m/n = 10 is k = round(10 ln 2) = 7 with p ~= 0.0078; the paper's five is
// a practical choice (fewer hashes), whose p is indeed ~0.0094. We verify
// all three numbers.
TEST(BloomMath, PaperExampleValues) {
    EXPECT_NEAR(bloom_fp_approx(10, 1, 4), 0.0118, 3e-4);   // paper: 1.2%
    EXPECT_NEAR(bloom_fp_approx(10, 1, 5), 0.00943, 3e-4);  // paper: 0.9%
    EXPECT_EQ(bloom_optimal_k(10, 1), 7u);                  // mathematical optimum
    EXPECT_NEAR(bloom_min_fp(10), 0.00819, 3e-4);
}

// More rows the paper tabulates: load factor 8 -> ~0.0216 (k=5 optimal or
// 6), load factor 16 -> ~0.000458 (k=11).
TEST(BloomMath, PaperLoadFactorRows) {
    EXPECT_NEAR(bloom_min_fp(8), 0.0216, 2e-3);
    EXPECT_NEAR(bloom_min_fp(16), 0.000458, 1e-4);
}

TEST(BloomMath, ExpectedSetBits) {
    // Inserting n keys with k functions sets about m(1-(1-1/m)^{kn}) bits.
    const double expected = bloom_expected_set_bits(1000, 100, 4);
    EXPECT_GT(expected, 300);  // 400 draws with few collisions
    EXPECT_LT(expected, 400);
    // Tiny occupancy: virtually no collisions -> about k*n bits set.
    EXPECT_NEAR(bloom_expected_set_bits(1e9, 10, 4), 40.0, 0.1);
}

TEST(BloomMath, CounterOverflowBoundMatchesPaperClaim) {
    // Section V-C: with k <= ln2 * m/n, Pr[any count >= 16] <= 1.37e-15 * m.
    // Our generic bound must also be astronomically small in that regime.
    const double m = 8.0 * 1024 * 1024;  // 1M docs at load factor 8
    const double n = 1024 * 1024;
    const double p16 = counter_overflow_bound(m, n, 4, 16);
    EXPECT_LT(p16, 1e-8);
    // And 4-bit counters are the paper's recommendation precisely because
    // 3-bit ones (overflow at 8) are orders of magnitude riskier.
    EXPECT_GT(counter_overflow_bound(m, n, 4, 8) / p16, 1e6);
}

TEST(BloomMath, BitsPerEntryForTargetFp) {
    // Inverse of the approximation: feeding the result back must hit p.
    for (double p : {0.1, 0.01, 0.001}) {
        const double r = bloom_bits_per_entry_for_fp(p, 4);
        EXPECT_NEAR(bloom_fp_approx(r, 1.0, 4), p, p * 0.01);
    }
    // Unreachable targets return infinity (k=1 cannot do arbitrarily well
    // ... actually k=1 can with enough bits; but p >= 1 regimes cannot).
    EXPECT_TRUE(std::isinf(bloom_bits_per_entry_for_fp(1e-12, 1)) ||
                bloom_bits_per_entry_for_fp(1e-12, 1) > 1e6);
}

}  // namespace
}  // namespace sc
