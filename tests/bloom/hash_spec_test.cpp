#include "bloom/hash_spec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sc {
namespace {

TEST(HashSpec, Validity) {
    EXPECT_TRUE((HashSpec{4, 32, 1024}).valid());
    EXPECT_FALSE((HashSpec{0, 32, 1024}).valid());   // no functions
    EXPECT_FALSE((HashSpec{4, 0, 1024}).valid());    // zero-width groups
    EXPECT_FALSE((HashSpec{4, 65, 1024}).valid());   // too wide
    EXPECT_FALSE((HashSpec{4, 32, 0}).valid());      // empty table
    EXPECT_FALSE((HashSpec{4, 8, 1024}).valid());    // 2^8 < 1024: unreachable slots
    EXPECT_TRUE((HashSpec{4, 10, 1024}).valid());    // 2^10 == 1024: exactly addressable
    EXPECT_TRUE((HashSpec{4, 64, 1u << 30}).valid());
}

TEST(HashSpec, IndexesAreDeterministic) {
    const HashSpec spec{4, 32, 65536};
    const auto a = bloom_indexes("http://example.com/doc", spec);
    const auto b = bloom_indexes("http://example.com/doc", spec);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 4u);
}

TEST(HashSpec, IndexesWithinTable) {
    const HashSpec spec{8, 32, 12345};  // non-power-of-two table
    for (int i = 0; i < 200; ++i) {
        const auto idx = bloom_indexes("url" + std::to_string(i), spec);
        for (std::uint32_t x : idx) ASSERT_LT(x, spec.table_bits);
    }
}

TEST(HashSpec, DifferentKeysDifferentIndexes) {
    const HashSpec spec{4, 32, 1u << 20};
    const auto a = bloom_indexes("http://a/", spec);
    const auto b = bloom_indexes("http://b/", spec);
    EXPECT_NE(a, b);
}

TEST(HashSpec, MoreFunctionsThan128BitsUsesConcatenatedMd5) {
    // 10 functions x 32 bits = 320 bits > 128: the extension recipe of
    // Section VI-A (MD5 of the URL concatenated with itself) kicks in.
    const HashSpec spec{10, 32, 1u << 16};
    const auto idx = bloom_indexes("http://example.com/long", spec);
    EXPECT_EQ(idx.size(), 10u);
    for (std::uint32_t x : idx) EXPECT_LT(x, spec.table_bits);
    // Deterministic across calls.
    EXPECT_EQ(idx, bloom_indexes("http://example.com/long", spec));
}

TEST(HashSpec, FirstFourFunctionsMatchMd5Words) {
    // With 32-bit groups, function i must equal MD5 word i mod m — the
    // paper's exact recipe ("dividing the 128 bits into four 32-bit words").
    const HashSpec spec{4, 32, 999983};
    const std::string url = "http://www.cs.wisc.edu/~cao/";
    const auto idx = bloom_indexes(url, spec);
    const Md5Digest d = md5(url);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(idx[static_cast<std::size_t>(i)], d.word32(i) % spec.table_bits) << i;
}

TEST(Md5BitStream, NonByteAlignedGroups) {
    // 13-bit groups exercise the cross-byte extraction path.
    Md5BitStream stream("key");
    std::vector<std::uint64_t> groups;
    for (int i = 0; i < 30; ++i) {
        const std::uint64_t g = stream.take(13);
        EXPECT_LT(g, 1ull << 13);
        groups.push_back(g);
    }
    // Reproducible.
    Md5BitStream stream2("key");
    for (int i = 0; i < 30; ++i) EXPECT_EQ(stream2.take(13), groups[static_cast<std::size_t>(i)]);
}

TEST(Md5BitStream, First128BitsMatchDigest) {
    Md5BitStream stream("abc");
    const Md5Digest d = md5("abc");
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(stream.take(8), d.bytes[static_cast<std::size_t>(i)]) << "byte " << i;
    // The next bits come from MD5("abcabc").
    const Md5Digest d2 = md5("abcabc");
    EXPECT_EQ(stream.take(8), d2.bytes[0]);
}

TEST(HashSpec, IndexDistributionIsRoughlyUniform) {
    const HashSpec spec{4, 32, 64};
    std::vector<int> counts(64, 0);
    constexpr int keys = 4000;
    for (int i = 0; i < keys; ++i)
        for (std::uint32_t x : bloom_indexes("k" + std::to_string(i), spec)) ++counts[x];
    const double expected = keys * 4.0 / 64.0;  // 250 per slot
    for (int c : counts) {
        EXPECT_GT(c, expected * 0.7);
        EXPECT_LT(c, expected * 1.3);
    }
}

}  // namespace
}  // namespace sc
