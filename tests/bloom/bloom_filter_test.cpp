#include "bloom/bloom_filter.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bloom/bloom_math.hpp"

namespace sc {
namespace {

HashSpec small_spec(std::uint32_t bits = 4096, std::uint16_t k = 4) {
    return HashSpec{k, 32, bits};
}

TEST(BloomFilter, EmptyContainsNothing) {
    const BloomFilter f(small_spec());
    EXPECT_FALSE(f.may_contain("anything"));
    EXPECT_EQ(f.popcount(), 0u);
    EXPECT_EQ(f.fill_ratio(), 0.0);
}

TEST(BloomFilter, NoFalseNegatives) {
    BloomFilter f(small_spec(1 << 14));
    std::vector<std::string> keys;
    for (int i = 0; i < 1000; ++i) keys.push_back("http://host/" + std::to_string(i));
    for (const auto& k : keys) f.insert(k);
    for (const auto& k : keys) ASSERT_TRUE(f.may_contain(k)) << k;
}

TEST(BloomFilter, InsertIsIdempotent) {
    BloomFilter f(small_spec());
    f.insert("x");
    const std::uint64_t pop = f.popcount();
    f.insert("x");
    EXPECT_EQ(f.popcount(), pop);
}

TEST(BloomFilter, SetAndTestBits) {
    BloomFilter f(small_spec(128));
    EXPECT_FALSE(f.test_bit(0));
    f.set_bit(0, true);
    f.set_bit(127, true);
    EXPECT_TRUE(f.test_bit(0));
    EXPECT_TRUE(f.test_bit(127));
    EXPECT_EQ(f.popcount(), 2u);
    f.set_bit(0, false);
    EXPECT_FALSE(f.test_bit(0));
    EXPECT_EQ(f.popcount(), 1u);
}

TEST(BloomFilter, ClearResets) {
    BloomFilter f(small_spec());
    for (int i = 0; i < 100; ++i) f.insert(std::to_string(i));
    f.clear();
    EXPECT_EQ(f.popcount(), 0u);
    EXPECT_FALSE(f.may_contain("0"));
}

TEST(BloomFilter, WordsRoundTrip) {
    BloomFilter f(small_spec());
    for (int i = 0; i < 64; ++i) f.insert("k" + std::to_string(i));
    const auto words = f.words();
    BloomFilter g(small_spec(), std::vector<std::uint64_t>(words.begin(), words.end()));
    EXPECT_EQ(f, g);
    for (int i = 0; i < 64; ++i) EXPECT_TRUE(g.may_contain("k" + std::to_string(i)));
}

TEST(BloomFilter, AssignWords) {
    BloomFilter src(small_spec());
    src.insert("hello");
    BloomFilter dst(small_spec());
    dst.assign_words(src.words());
    EXPECT_EQ(src, dst);
}

TEST(BloomFilter, DiffFindsExactlyTheDifferingBits) {
    BloomFilter a(small_spec(256));
    BloomFilter b(small_spec(256));
    a.set_bit(3, true);
    a.set_bit(250, true);
    b.set_bit(250, true);
    b.set_bit(100, true);
    const auto d = a.diff(b);
    EXPECT_EQ(d, (std::vector<std::uint32_t>{3, 100}));
    EXPECT_TRUE(a.diff(a).empty());
}

TEST(BloomFilter, FalsePositiveRateMatchesTheory) {
    // n = 1000 keys at 8 bits/entry with k=4: theory ~2.4% false positives.
    constexpr int n = 1000;
    const HashSpec spec{4, 32, 8 * n};
    BloomFilter f(spec);
    for (int i = 0; i < n; ++i) f.insert("member/" + std::to_string(i));

    int fp = 0;
    constexpr int probes = 50'000;
    for (int i = 0; i < probes; ++i)
        if (f.may_contain("nonmember/" + std::to_string(i))) ++fp;
    const double measured = static_cast<double>(fp) / probes;
    const double theory = bloom_fp_exact(8.0 * n, n, 4);
    EXPECT_NEAR(measured, theory, theory * 0.25);
    // estimated_fp_rate (from fill ratio) tracks both.
    EXPECT_NEAR(f.estimated_fp_rate(), theory, theory * 0.25);
}

// Paper Section V-C headline numbers: at 10 bits/entry the false-positive
// probability is ~1.2% with four hash functions and ~0.9% with five.
TEST(BloomFilter, PaperLoadFactorTenNumbers) {
    EXPECT_NEAR(bloom_fp_approx(10, 1, 4), 0.0118, 0.0005);
    EXPECT_NEAR(bloom_fp_approx(10, 1, 5), 0.00943, 0.0005);
}

struct LoadFactorCase {
    std::uint32_t load_factor;
    std::uint16_t k;
};

class BloomLoadFactorSweep : public ::testing::TestWithParam<LoadFactorCase> {};

TEST_P(BloomLoadFactorSweep, MeasuredFpWithinTheoryBand) {
    const auto [lf, k] = GetParam();
    constexpr int n = 2000;
    const HashSpec spec{k, 32, lf * n};
    BloomFilter f(spec);
    for (int i = 0; i < n; ++i) f.insert("in/" + std::to_string(i));
    int fp = 0;
    const int probes = 200'000;
    for (int i = 0; i < probes; ++i)
        if (f.may_contain("out/" + std::to_string(i))) ++fp;
    const double measured = static_cast<double>(fp) / probes;
    const double theory = bloom_fp_exact(static_cast<double>(lf) * n, n, k);
    EXPECT_LT(measured, theory * 1.5 + 1e-4);
    EXPECT_GT(measured, theory * 0.5 - 1e-4);
}

INSTANTIATE_TEST_SUITE_P(LoadFactors, BloomLoadFactorSweep,
                         ::testing::Values(LoadFactorCase{4, 3}, LoadFactorCase{8, 4},
                                           LoadFactorCase{16, 4}, LoadFactorCase{16, 8},
                                           LoadFactorCase{32, 4}),
                         [](const auto& info) {
                             return "lf" + std::to_string(info.param.load_factor) + "_k" +
                                    std::to_string(info.param.k);
                         });

}  // namespace
}  // namespace sc
