#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "cache/infinite_cache.hpp"

namespace sc {
namespace {

TraceProfile tiny_profile() {
    TraceProfile p = standard_profile(TraceKind::upisa, 0.02);
    return p;
}

TEST(TraceProfile, NamesAndKinds) {
    EXPECT_STREQ(trace_name(TraceKind::dec), "DEC");
    EXPECT_STREQ(trace_name(TraceKind::nlanr), "NLANR");
    for (TraceKind kind : kAllTraceKinds) {
        const TraceProfile p = standard_profile(kind);
        EXPECT_GT(p.requests, 0u) << p.name;
        EXPECT_GE(p.clients, p.proxy_groups) << p.name;
        EXPECT_GT(p.shared_docs, 0u) << p.name;
    }
}

TEST(TraceProfile, ScaleShrinksVolume) {
    const TraceProfile full = standard_profile(TraceKind::dec);
    const TraceProfile small = standard_profile(TraceKind::dec, 0.1);
    EXPECT_NEAR(static_cast<double>(small.requests), full.requests * 0.1, 2.0);
    EXPECT_LT(small.shared_docs, full.shared_docs);
    EXPECT_EQ(small.proxy_groups, full.proxy_groups);  // topology is fixed
}

TEST(TraceGenerator, EmitsExactlyProfileRequests) {
    TraceGenerator gen(tiny_profile());
    const auto trace = gen.generate_all();
    EXPECT_EQ(trace.size(), gen.profile().requests);
    EXPECT_FALSE(gen.next().has_value());  // exhausted
}

TEST(TraceGenerator, DeterministicForSameSeed) {
    const auto a = TraceGenerator(tiny_profile()).generate_all();
    const auto b = TraceGenerator(tiny_profile()).generate_all();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a, b);
}

TEST(TraceGenerator, DifferentSeedsDiffer) {
    TraceProfile p1 = tiny_profile();
    TraceProfile p2 = tiny_profile();
    p2.seed ^= 0xdeadbeef;
    const auto a = TraceGenerator(p1).generate_all();
    const auto b = TraceGenerator(p2).generate_all();
    EXPECT_NE(a, b);
}

TEST(TraceGenerator, TimestampsNondecreasing) {
    const auto trace = TraceGenerator(tiny_profile()).generate_all();
    for (std::size_t i = 1; i < trace.size(); ++i)
        ASSERT_GE(trace[i].timestamp, trace[i - 1].timestamp - 1e-3) << i;
}

TEST(TraceGenerator, ClientIdsWithinPopulation) {
    TraceProfile p = tiny_profile();
    const auto trace = TraceGenerator(p).generate_all();
    for (const Request& r : trace) ASSERT_LE(r.client_id, p.clients);  // +1 anomaly slack
}

TEST(TraceGenerator, SizesConsistentPerDocumentVersion) {
    const auto trace = TraceGenerator(tiny_profile()).generate_all();
    std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>> seen;
    for (const Request& r : trace) {
        const auto key = r.url + "#" + std::to_string(r.version);
        const auto [it, inserted] = seen.try_emplace(key, std::make_pair(r.size, r.version));
        if (!inserted) {
            ASSERT_EQ(it->second.first, r.size) << key;
        }
    }
}

TEST(TraceGenerator, RequestsRepeatAcrossClients) {
    // Cross-client overlap is what makes cache sharing worthwhile; the
    // generator must produce documents requested by multiple clients.
    const auto trace = TraceGenerator(tiny_profile()).generate_all();
    std::unordered_map<std::string, std::set<std::uint32_t>> clients_per_url;
    for (const Request& r : trace) clients_per_url[r.url].insert(r.client_id);
    std::size_t shared = 0;
    for (const auto& [url, clients] : clients_per_url)
        if (clients.size() > 1) ++shared;
    EXPECT_GT(shared, clients_per_url.size() / 20);
}

TEST(TraceGenerator, HostToUrlRatioNearPaperValue) {
    // Section V-B observes ~10 URLs per server name.
    const auto trace = TraceGenerator(TraceGenerator(tiny_profile()).profile()).generate_all();
    std::unordered_set<std::string> urls;
    std::unordered_set<std::string> hosts;
    for (const Request& r : trace) {
        urls.insert(r.url);
        hosts.insert(std::string(url_host(r.url)));
    }
    const double ratio = static_cast<double>(urls.size()) / static_cast<double>(hosts.size());
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 25.0);
}

TEST(TraceGenerator, NlanrAnomalyEmitsNearDuplicates) {
    TraceProfile p = standard_profile(TraceKind::nlanr, 0.02);
    const auto trace = TraceGenerator(p).generate_all();
    std::size_t duplicates = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        const auto& a = trace[i - 1];
        const auto& b = trace[i];
        if (a.url == b.url && b.client_id == a.client_id + 1 &&
            b.timestamp - a.timestamp < 1e-3)
            ++duplicates;
    }
    EXPECT_GT(duplicates, trace.size() * p.duplicate_fraction / 4);
    // And the duplicate lands in a different proxy group.
    EXPECT_GT(p.proxy_groups, 1u);
}

TEST(TraceGenerator, InfiniteCacheHitRatioInPlausibleBand) {
    // The calibrated profiles should land in web-trace territory
    // (Table I maxima were roughly 30%-60%).
    for (TraceKind kind : kAllTraceKinds) {
        const auto trace = TraceGenerator(standard_profile(kind, 0.05)).generate_all();
        InfiniteCacheStats stats;
        for (const Request& r : trace) stats.add_request(r.url, r.size, r.version);
        EXPECT_GT(stats.max_hit_ratio(), 0.15) << trace_name(kind);
        EXPECT_LT(stats.max_hit_ratio(), 0.80) << trace_name(kind);
    }
}

TEST(TraceGenerator, ProxyGroupPartitioning) {
    EXPECT_EQ(TraceGenerator::proxy_group(0, 4), 0u);
    EXPECT_EQ(TraceGenerator::proxy_group(5, 4), 1u);
    EXPECT_EQ(TraceGenerator::proxy_group(7, 8), 7u);
}

TEST(UrlHost, ExtractsHostComponent) {
    EXPECT_EQ(url_host("http://example.com/path/x"), "example.com");
    EXPECT_EQ(url_host("http://s12.DEC/d99"), "s12.DEC");
    EXPECT_EQ(url_host("no-scheme/path"), "no-scheme");
    EXPECT_EQ(url_host("http://bare-host"), "bare-host");
}

}  // namespace
}  // namespace sc
