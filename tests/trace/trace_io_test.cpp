#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/generator.hpp"

namespace sc {
namespace {

std::vector<Request> sample_trace() {
    return {
        {0.5, 1, "http://a.com/x", 1024, 0},
        {1.25, 2, "http://b.com/y", 77, 3},
        {2.0, 1, "http://a.com/x", 1024, 0},
    };
}

TEST(TraceIo, RoundTripThroughStream) {
    std::stringstream ss;
    write_trace_csv(ss, sample_trace());
    const auto back = read_trace_csv(ss);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].url, "http://a.com/x");
    EXPECT_EQ(back[1].client_id, 2u);
    EXPECT_EQ(back[1].size, 77u);
    EXPECT_EQ(back[1].version, 3u);
    EXPECT_NEAR(back[0].timestamp, 0.5, 1e-6);
}

TEST(TraceIo, GeneratedTraceRoundTripsExactly) {
    TraceProfile p = standard_profile(TraceKind::ucb, 0.005);
    const auto trace = TraceGenerator(p).generate_all();
    std::stringstream ss;
    write_trace_csv(ss, trace);
    const auto back = read_trace_csv(ss);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(back[i].url, trace[i].url) << i;
        ASSERT_EQ(back[i].client_id, trace[i].client_id) << i;
        ASSERT_EQ(back[i].size, trace[i].size) << i;
        ASSERT_EQ(back[i].version, trace[i].version) << i;
        ASSERT_NEAR(back[i].timestamp, trace[i].timestamp, 1e-5) << i;
    }
}

TEST(TraceIo, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/sc_trace_io_test.csv";
    write_trace_csv_file(path, sample_trace());
    const auto back = read_trace_csv_file(path);
    EXPECT_EQ(back.size(), 3u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
    EXPECT_THROW(read_trace_csv_file("/nonexistent/dir/nope.csv"), std::runtime_error);
}

TEST(TraceIo, EmptyInputThrows) {
    std::stringstream ss;
    EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceIo, BadHeaderThrows) {
    std::stringstream ss("wrong,header\n");
    EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceIo, TooFewFieldsThrows) {
    std::stringstream ss("timestamp,client,url,size,version\n1.0,2,http://x\n");
    EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceIo, TooManyFieldsThrows) {
    std::stringstream ss("timestamp,client,url,size,version\n1.0,2,http://x,10,0,extra\n");
    EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceIo, BadIntegerThrows) {
    std::stringstream ss("timestamp,client,url,size,version\n1.0,abc,http://x,10,0\n");
    EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceIo, BlankLinesAreSkipped) {
    std::stringstream ss("timestamp,client,url,size,version\n\n1.0,2,http://x,10,0\n\n");
    const auto back = read_trace_csv(ss);
    EXPECT_EQ(back.size(), 1u);
}

}  // namespace
}  // namespace sc
