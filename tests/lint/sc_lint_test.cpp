// sc_lint behaves as a contract: fixture files pin the exact diagnostics
// (file, line, rule), and the lexer/marker machinery is unit-tested against
// the corner cases that would silently disable a rule.
#include "lint/sc_lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace {

using sc::lint::Diagnostic;
using sc::lint::lint_source;
using sc::lint::Options;

std::vector<Diagnostic> lint(std::string_view text, Options options = {}) {
    return lint_source("test.cpp", text, options);
}

std::string fixture_path(const std::string& name) {
    return std::string(SC_LINT_FIXTURE_DIR) + "/" + name;
}

// --- fixtures -------------------------------------------------------------

TEST(ScLintFixtures, KnownGoodIsClean) {
    const auto diags = sc::lint::lint_file(fixture_path("known_good.cpp"));
    ASSERT_TRUE(diags.has_value());
    EXPECT_TRUE(diags->empty()) << sc::lint::format(diags->front());
}

TEST(ScLintFixtures, KnownBadSeedsAreEachCaught) {
    const auto diags = sc::lint::lint_file(fixture_path("known_bad.cpp"));
    ASSERT_TRUE(diags.has_value());
    // (line, rule) for every seeded violation, in order.
    const std::vector<std::pair<unsigned, std::string>> expected = {
        {8, "raw-mutex"},           {11, "raw-mutex"},
        {15, "hotpath-alloc"},      {19, "hotpath-alloc"},
        {23, "eventloop-blocking"}, {24, "eventloop-blocking"},
        {28, "raw-counter-shift"},
        {32, "eventloop-blocking"}, {33, "eventloop-blocking"},
        {34, "eventloop-blocking"}, {35, "eventloop-blocking"},
        {36, "eventloop-blocking"}, {37, "eventloop-blocking"},
        {41, "eventloop-blocking"}, {42, "eventloop-blocking"},
        {43, "eventloop-blocking"}, {44, "eventloop-blocking"},
        {48, "raw-poll"},           {49, "raw-poll"},
        {50, "raw-poll"},           {54, "eventloop-blocking"},
        {61, "raw-decode"},         {62, "raw-decode"},
        {63, "raw-decode"},         {64, "raw-decode"},
        {68, "exhaustive-wire-switch"},
        {75, "waiver-sanity"},
    };
    ASSERT_EQ(diags->size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ((*diags)[i].line, expected[i].first) << sc::lint::format((*diags)[i]);
        EXPECT_EQ((*diags)[i].rule, expected[i].second) << sc::lint::format((*diags)[i]);
    }
}

TEST(ScLintFixtures, MissingFileIsAnError) {
    EXPECT_FALSE(sc::lint::lint_file(fixture_path("no_such_file.cpp")).has_value());
}

// --- diagnostic format ----------------------------------------------------

TEST(ScLintFormat, MatchesCompilerStyle) {
    const Diagnostic d{"a/b.cpp", 12, "raw-mutex", "boom"};
    EXPECT_EQ(sc::lint::format(d), "a/b.cpp:12: error: [raw-mutex] boom");
}

// --- raw-mutex ------------------------------------------------------------

TEST(ScLintRawMutex, FlagsEveryStdSyncType) {
    for (const char* t : {"mutex", "lock_guard", "unique_lock", "scoped_lock",
                          "condition_variable", "shared_mutex"}) {
        const auto diags = lint("std::" + std::string(t) + " x;");
        ASSERT_EQ(diags.size(), 1u) << t;
        EXPECT_EQ(diags[0].rule, "raw-mutex");
        EXPECT_EQ(diags[0].line, 1u);
    }
}

TEST(ScLintRawMutex, WrapperHeaderIsExempt) {
    EXPECT_TRUE(lint_source("src/util/thread_annotations.hpp",
                            "std::mutex mu_; std::condition_variable cv_;")
                    .empty());
}

TEST(ScLintRawMutex, ScWrappersAreClean) {
    EXPECT_TRUE(lint("sc::Mutex mu; const sc::MutexLock lock(mu);").empty());
}

TEST(ScLintRawMutex, CommentsAndStringsAreStripped) {
    EXPECT_TRUE(lint("// std::mutex here\n"
                     "/* std::lock_guard there */\n"
                     "const char* s = \"std::mutex\";\n"
                     "const char* r = R\"(std::condition_variable)\";\n")
                    .empty());
}

// --- marker scoping -------------------------------------------------------

TEST(ScLintHotPath, DeclarationIsNotABody) {
    EXPECT_TRUE(lint("SC_HOT_PATH bool probe(std::string_view key);\n"
                     "void elsewhere() { auto p = new int; }\n")
                    .empty());
}

TEST(ScLintHotPath, BodyEndsAtMatchingBrace) {
    const auto diags = lint("SC_HOT_PATH void f() { if (x) { y(); } }\n"
                            "void g() { auto p = new int; }\n");
    EXPECT_TRUE(diags.empty());  // the `new` is outside the marked body
}

TEST(ScLintHotPath, TheDefineItselfIsSkipped) {
    EXPECT_TRUE(lint("#define SC_HOT_PATH\n#define SC_EVENT_LOOP_ONLY\n").empty());
}

TEST(ScLintHotPath, WaiverOnPreviousLineSuppresses) {
    EXPECT_TRUE(lint("SC_HOT_PATH void f(Buf& out) {\n"
                     "    // sc_lint: allow(hotpath-alloc) inline buffer\n"
                     "    out.push_back(1);\n"
                     "}\n")
                    .empty());
}

TEST(ScLintHotPath, WaiverNamesTheRule) {
    const auto diags = lint("SC_HOT_PATH void f(Buf& out) {\n"
                            "    // sc_lint: allow(raw-mutex) wrong rule named\n"
                            "    out.push_back(1);\n"
                            "}\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "hotpath-alloc");
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(ScLintHotPath, IdentifierMustBeACall) {
    // A member or local merely NAMED like a deny-listed call is fine...
    EXPECT_TRUE(lint("SC_HOT_PATH int f(S s) { return s.reserve; }\n").empty());
    // ...but calling it is not.
    EXPECT_EQ(lint("SC_HOT_PATH void f(S s) { s.reserve(4); }\n").size(), 1u);
}

TEST(ScLintEventLoop, BlockingCallsAreNamed) {
    const auto diags = lint(
        "SC_EVENT_LOOP_ONLY void step() {\n"
        "    conn.write_all(buf);\n"
        "    origin.connect(ep);\n"
        "}\n");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "eventloop-blocking");
    EXPECT_NE(diags[0].message.find("write_all"), std::string::npos);
    EXPECT_NE(diags[1].message.find("connect"), std::string::npos);
}

TEST(ScLintEventLoop, FileIoIsBlocking) {
    // Disk work (the src/store tier) must stay on worker threads.
    const auto diags = lint(
        "SC_EVENT_LOOP_ONLY void touch() {\n"
        "    const int fd = open(path, 0);\n"
        "    pread(fd, buf, n, 0);\n"
        "    fdatasync(fd);\n"
        "}\n");
    ASSERT_EQ(diags.size(), 3u);
    for (const auto& d : diags) EXPECT_EQ(d.rule, "eventloop-blocking");
}

TEST(ScLintEventLoop, SummaryEncodingIsBlocking) {
    // Draining the journal / serializing a bitmap takes node_mu_ and can be
    // megabytes of work; the loop must hand it to the worker pool instead.
    const auto diags = lint(
        "SC_EVENT_LOOP_ONLY void on_resync() {\n"
        "    const auto chunks = node_.encode_full_update_chunks();\n"
        "    sync_node_locked();\n"
        "}\n");
    ASSERT_EQ(diags.size(), 2u);
    for (const auto& d : diags) EXPECT_EQ(d.rule, "eventloop-blocking");
    // ...but ENQUEUEING the push is exactly what the loop should do.
    EXPECT_TRUE(lint("SC_EVENT_LOOP_ONLY void on_resync() {\n"
                     "    enqueue_task([this, id] { push_full_summary_to(id); });\n"
                     "}\n")
                    .empty());
}

TEST(ScLintEventLoop, FileIoOffTheLoopIsFine) {
    EXPECT_TRUE(lint("void flush(int fd) { fsync(fd); ftruncate(fd, 0); }\n").empty());
}

// --- raw-counter-shift ----------------------------------------------------

TEST(ScLintCounterShift, FlagsWidthShiftOutsideCounterMath) {
    const auto diags = lint("unsigned m = (1u << counter_bits) - 1u;");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "raw-counter-shift");
}

TEST(ScLintCounterShift, CounterMathHeaderIsExempt) {
    EXPECT_TRUE(lint_source("src/bloom/counter_math.hpp",
                            "return (1u << counter_bits) - 1u;")
                    .empty());
}

TEST(ScLintCounterShift, ShiftWithoutWidthIdentIsFine) {
    EXPECT_TRUE(lint("unsigned m = (1u << bits) - 1u; use(counter_bits_);").empty());
}

// --- raw-poll -------------------------------------------------------------

TEST(ScLintRawPoll, FlagsGlobalReadinessCalls) {
    for (const char* call : {"::poll(fds, n, 50)", "poll(fds, n, 50)",
                             "epoll_wait(ep, evs, 64, -1)",
                             "ppoll(fds, n, &ts, nullptr)",
                             "epoll_pwait(ep, evs, 64, -1, nullptr)"}) {
        const auto diags = lint("void f() { " + std::string(call) + "; }");
        ASSERT_EQ(diags.size(), 1u) << call;
        EXPECT_EQ(diags[0].rule, "raw-poll");
    }
}

TEST(ScLintRawPoll, NetLayerIsExempt) {
    EXPECT_TRUE(lint_source("src/net/event_backend.cpp",
                            "int n = ::poll(pfds_.data(), pfds_.size(), ms);")
                    .empty());
    EXPECT_TRUE(lint_source("src/net/fd_poll.hpp",
                            "if (::poll(&pfd, 1, timeout_ms) < 0) {}")
                    .empty());
}

TEST(ScLintRawPoll, MethodsAndWrappersAreNotRawCalls) {
    // Member calls and namespace-qualified wrappers are someone else's
    // abstraction, not a direct syscall.
    EXPECT_TRUE(lint("void f() { backend.poll(out); sel->epoll_wait(out); }").empty());
    EXPECT_TRUE(lint("void f() { mylib::poll(fds, n, 50); }").empty());
    // A member merely named like the syscall is fine too.
    EXPECT_TRUE(lint("int f(S s) { return s.poll; }").empty());
}

TEST(ScLintRawPoll, WaiverSuppresses) {
    EXPECT_TRUE(lint("void f() {\n"
                     "    // sc_lint: allow(raw-poll) startup probe, pre-loop\n"
                     "    ::poll(fds, n, 0);\n"
                     "}\n")
                    .empty());
}

// --- rule selection -------------------------------------------------------

TEST(ScLintOptions, RuleFilterRunsOnlyThatRule) {
    const std::string text =
        "std::mutex mu;\nunsigned m = (1u << counter_bits) - 1u;\n";
    Options only_mutex;
    only_mutex.rules = {"raw-mutex"};
    const auto diags = lint(text, only_mutex);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "raw-mutex");
    EXPECT_EQ(lint(text).size(), 2u);
}

TEST(ScLintOptions, AllRulesListsEight) {
    EXPECT_EQ(sc::lint::all_rules().size(), 8u);
}

// --- raw-decode -----------------------------------------------------------

TEST(ScLintRawDecode, UnmarkedTuIsOutOfScope) {
    EXPECT_TRUE(lint("void f(Buf& b) { memcpy(dst, b.ptr, 4); }\n").empty());
}

TEST(ScLintRawDecode, MarkedTuDeniesRawReads) {
    const std::string prefix = "SC_UNTRUSTED_DECODE_TU;\n";
    for (const char* bad :
         {"memcpy(dst, src, 4)", "std::memcpy(dst, src, 4)",
          "sscanf(p, \"%u\", &v)", "strtoul(p, nullptr, 10)",
          "reinterpret_cast<const char*>(p)", "use(b.data() + off)"}) {
        const auto diags = lint(prefix + "void f() { " + bad + "; }\n");
        ASSERT_EQ(diags.size(), 1u) << bad;
        EXPECT_EQ(diags[0].rule, "raw-decode");
        EXPECT_EQ(diags[0].line, 2u);
    }
}

TEST(ScLintRawDecode, TheDefineItselfDoesNotMarkTheTu) {
    EXPECT_TRUE(
        lint("#define SC_UNTRUSTED_DECODE_TU static_assert(true, \"\")\n"
             "void f() { memcpy(dst, src, 4); }\n")
            .empty());
}

TEST(ScLintRawDecode, MethodsAndWrappersAreNotRawReads) {
    const std::string prefix = "SC_UNTRUSTED_DECODE_TU;\n";
    EXPECT_TRUE(lint(prefix + "void f(S s) { s.memcpy(p); codec->sscanf(p); }\n")
                    .empty());
    EXPECT_TRUE(lint(prefix + "void f() { mylib::memcpy(d, s, 4); }\n").empty());
    // data() without pointer math (e.g. passed whole to a checked API) is fine.
    EXPECT_TRUE(lint(prefix + "void f(Buf& b) { parse(b.data(), b.size()); }\n")
                    .empty());
}

TEST(ScLintRawDecode, ByteReaderHeadersAreExempt) {
    EXPECT_TRUE(lint_source("src/util/byte_reader.hpp",
                            "SC_UNTRUSTED_DECODE_TU;\n"
                            "auto* p = reinterpret_cast<const std::uint8_t*>(s);\n")
                    .empty());
    EXPECT_TRUE(lint_source("src/util/byte_writer.hpp",
                            "SC_UNTRUSTED_DECODE_TU;\n"
                            "auto* p = reinterpret_cast<std::uint8_t*>(s);\n")
                    .empty());
}

TEST(ScLintRawDecode, WaiverSuppresses) {
    EXPECT_TRUE(lint("SC_UNTRUSTED_DECODE_TU;\n"
                     "void f() {\n"
                     "    // sc_lint: allow(raw-decode) validated by re-encode\n"
                     "    sscanf(name, \"seg-%16llx.log\", &id);\n"
                     "}\n")
                    .empty());
}

// --- exhaustive-wire-switch -----------------------------------------------

TEST(ScLintWireSwitch, MissingEnumeratorsAreNamed) {
    const auto diags = lint(
        "int f(IcpOpcode op) {\n"
        "    switch (op) {\n"
        "        case IcpOpcode::query: return 1;\n"
        "        case IcpOpcode::hit: return 2;\n"
        "    }\n"
        "    return 0;\n"
        "}\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "exhaustive-wire-switch");
    EXPECT_EQ(diags[0].line, 2u);
    EXPECT_NE(diags[0].message.find("dirupdate"), std::string::npos);
    EXPECT_EQ(diags[0].message.find("query"), std::string::npos);
}

TEST(ScLintWireSwitch, DefaultArmIsTotal) {
    EXPECT_TRUE(lint("int f(IcpOpcode op) {\n"
                     "    switch (op) {\n"
                     "        case IcpOpcode::query: return 1;\n"
                     "        default: return 0;\n"
                     "    }\n"
                     "}\n")
                    .empty());
}

TEST(ScLintWireSwitch, FullCoverageIsTotal) {
    const std::string cases =
        "case SummaryApplyResult::applied: case SummaryApplyResult::partial:\n"
        "case SummaryApplyResult::duplicate: case SummaryApplyResult::stale:\n"
        "case SummaryApplyResult::gap: case SummaryApplyResult::need_bootstrap:\n"
        "case SummaryApplyResult::need_resync: case SummaryApplyResult::rejected:\n";
    EXPECT_TRUE(lint("int f(SummaryApplyResult r) {\n"
                     "    switch (r) {\n" + cases +
                     "        return 1;\n"
                     "    }\n"
                     "    return 0;\n"
                     "}\n")
                    .empty());
    // Dropping one enumerator breaks totality again.
    const auto diags = lint(
        "int f(SummaryApplyResult r) {\n"
        "    switch (r) {\n"
        "        case SummaryApplyResult::applied: return 1;\n"
        "    }\n"
        "    return 0;\n"
        "}\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("need_resync"), std::string::npos);
}

TEST(ScLintWireSwitch, OtherEnumsAreIgnored) {
    EXPECT_TRUE(lint("int f(Color c) {\n"
                     "    switch (c) { case Color::red: return 1; }\n"
                     "    return 0;\n"
                     "}\n")
                    .empty());
}

TEST(ScLintWireSwitch, NestedSwitchesAreIndependent) {
    // The inner switch is total (default); only the outer one is short.
    const auto diags = lint(
        "int f(IcpOpcode op, int k) {\n"
        "    switch (op) {\n"
        "        case IcpOpcode::query: {\n"
        "            switch (k) { default: return 9; }\n"
        "        }\n"
        "    }\n"
        "    return 0;\n"
        "}\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2u);
}

// --- waiver-sanity --------------------------------------------------------

TEST(ScLintWaiverSanity, UnknownRuleIsAViolation) {
    const auto diags = lint("void f() {\n"
                            "    // sc_lint: allow(no-such-rule) typo\n"
                            "    use(0);\n"
                            "}\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "waiver-sanity");
    EXPECT_EQ(diags[0].line, 2u);
    EXPECT_NE(diags[0].message.find("no-such-rule"), std::string::npos);
}

TEST(ScLintWaiverSanity, KnownRuleWaiverIsNotAViolation) {
    EXPECT_TRUE(lint("void f() {\n"
                     "    // sc_lint: allow(raw-poll) pre-loop probe\n"
                     "    ::poll(fds, n, 0);\n"
                     "}\n")
                    .empty());
}

// --- unused-waiver notes --------------------------------------------------

TEST(ScLintNotes, UnusedWaiverProducesANote) {
    const auto report = sc::lint::lint_source_report(
        "test.cpp",
        "void f() {\n"
        "    // sc_lint: allow(raw-poll) nothing left to waive\n"
        "    use(0);\n"
        "}\n");
    EXPECT_TRUE(report.diagnostics.empty());
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_EQ(report.notes[0].line, 2u);
    EXPECT_NE(report.notes[0].message.find("raw-poll"), std::string::npos);
}

TEST(ScLintNotes, UsedWaiverProducesNoNote) {
    const auto report = sc::lint::lint_source_report(
        "test.cpp",
        "void f() {\n"
        "    // sc_lint: allow(raw-poll) startup probe\n"
        "    ::poll(fds, n, 0);\n"
        "}\n");
    EXPECT_TRUE(report.diagnostics.empty());
    EXPECT_TRUE(report.notes.empty());
}

TEST(ScLintNotes, UnknownRuleWaiverIsNotAlsoAnUnusedNote) {
    const auto report = sc::lint::lint_source_report(
        "test.cpp", "// sc_lint: allow(no-such-rule) typo\nuse(0);\n");
    EXPECT_EQ(report.diagnostics.size(), 1u);  // waiver-sanity owns this
    EXPECT_TRUE(report.notes.empty());
}

TEST(ScLintNotes, NarrowedRunProducesNoNotes) {
    Options only_mutex;
    only_mutex.rules = {"raw-mutex"};
    const auto report = sc::lint::lint_source_report(
        "test.cpp",
        "// sc_lint: allow(raw-poll) rule not even running\nuse(0);\n",
        only_mutex);
    EXPECT_TRUE(report.diagnostics.empty());
    EXPECT_TRUE(report.notes.empty());
}

TEST(ScLintNotes, NoteFormatMatchesCompilerStyle) {
    const sc::lint::Note n{"a/b.cpp", 7, "unused sc_lint waiver"};
    EXPECT_EQ(sc::lint::format(n), "a/b.cpp:7: note: unused sc_lint waiver");
}

TEST(ScLintNotes, StaleWaiverFixtureYieldsExactlyOneNote) {
    const auto report = sc::lint::lint_file_report(fixture_path("stale_waiver.cpp"));
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(report->diagnostics.empty());
    ASSERT_EQ(report->notes.size(), 1u);
    EXPECT_EQ(report->notes[0].line, 8u);
}

}  // namespace
