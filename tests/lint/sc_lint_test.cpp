// sc_lint behaves as a contract: fixture files pin the exact diagnostics
// (file, line, rule), and the lexer/marker machinery is unit-tested against
// the corner cases that would silently disable a rule.
#include "lint/sc_lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace {

using sc::lint::Diagnostic;
using sc::lint::lint_source;
using sc::lint::Options;

std::vector<Diagnostic> lint(std::string_view text, Options options = {}) {
    return lint_source("test.cpp", text, options);
}

std::string fixture_path(const std::string& name) {
    return std::string(SC_LINT_FIXTURE_DIR) + "/" + name;
}

// --- fixtures -------------------------------------------------------------

TEST(ScLintFixtures, KnownGoodIsClean) {
    const auto diags = sc::lint::lint_file(fixture_path("known_good.cpp"));
    ASSERT_TRUE(diags.has_value());
    EXPECT_TRUE(diags->empty()) << sc::lint::format(diags->front());
}

TEST(ScLintFixtures, KnownBadSeedsAreEachCaught) {
    const auto diags = sc::lint::lint_file(fixture_path("known_bad.cpp"));
    ASSERT_TRUE(diags.has_value());
    // (line, rule) for every seeded violation, in order.
    const std::vector<std::pair<unsigned, std::string>> expected = {
        {8, "raw-mutex"},           {11, "raw-mutex"},
        {15, "hotpath-alloc"},      {19, "hotpath-alloc"},
        {23, "eventloop-blocking"}, {24, "eventloop-blocking"},
        {28, "raw-counter-shift"},
        {32, "eventloop-blocking"}, {33, "eventloop-blocking"},
        {34, "eventloop-blocking"}, {35, "eventloop-blocking"},
        {36, "eventloop-blocking"}, {37, "eventloop-blocking"},
        {41, "eventloop-blocking"}, {42, "eventloop-blocking"},
        {43, "eventloop-blocking"}, {44, "eventloop-blocking"},
        {48, "raw-poll"},           {49, "raw-poll"},
        {50, "raw-poll"},           {54, "eventloop-blocking"},
    };
    ASSERT_EQ(diags->size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ((*diags)[i].line, expected[i].first) << sc::lint::format((*diags)[i]);
        EXPECT_EQ((*diags)[i].rule, expected[i].second) << sc::lint::format((*diags)[i]);
    }
}

TEST(ScLintFixtures, MissingFileIsAnError) {
    EXPECT_FALSE(sc::lint::lint_file(fixture_path("no_such_file.cpp")).has_value());
}

// --- diagnostic format ----------------------------------------------------

TEST(ScLintFormat, MatchesCompilerStyle) {
    const Diagnostic d{"a/b.cpp", 12, "raw-mutex", "boom"};
    EXPECT_EQ(sc::lint::format(d), "a/b.cpp:12: error: [raw-mutex] boom");
}

// --- raw-mutex ------------------------------------------------------------

TEST(ScLintRawMutex, FlagsEveryStdSyncType) {
    for (const char* t : {"mutex", "lock_guard", "unique_lock", "scoped_lock",
                          "condition_variable", "shared_mutex"}) {
        const auto diags = lint("std::" + std::string(t) + " x;");
        ASSERT_EQ(diags.size(), 1u) << t;
        EXPECT_EQ(diags[0].rule, "raw-mutex");
        EXPECT_EQ(diags[0].line, 1u);
    }
}

TEST(ScLintRawMutex, WrapperHeaderIsExempt) {
    EXPECT_TRUE(lint_source("src/util/thread_annotations.hpp",
                            "std::mutex mu_; std::condition_variable cv_;")
                    .empty());
}

TEST(ScLintRawMutex, ScWrappersAreClean) {
    EXPECT_TRUE(lint("sc::Mutex mu; const sc::MutexLock lock(mu);").empty());
}

TEST(ScLintRawMutex, CommentsAndStringsAreStripped) {
    EXPECT_TRUE(lint("// std::mutex here\n"
                     "/* std::lock_guard there */\n"
                     "const char* s = \"std::mutex\";\n"
                     "const char* r = R\"(std::condition_variable)\";\n")
                    .empty());
}

// --- marker scoping -------------------------------------------------------

TEST(ScLintHotPath, DeclarationIsNotABody) {
    EXPECT_TRUE(lint("SC_HOT_PATH bool probe(std::string_view key);\n"
                     "void elsewhere() { auto p = new int; }\n")
                    .empty());
}

TEST(ScLintHotPath, BodyEndsAtMatchingBrace) {
    const auto diags = lint("SC_HOT_PATH void f() { if (x) { y(); } }\n"
                            "void g() { auto p = new int; }\n");
    EXPECT_TRUE(diags.empty());  // the `new` is outside the marked body
}

TEST(ScLintHotPath, TheDefineItselfIsSkipped) {
    EXPECT_TRUE(lint("#define SC_HOT_PATH\n#define SC_EVENT_LOOP_ONLY\n").empty());
}

TEST(ScLintHotPath, WaiverOnPreviousLineSuppresses) {
    EXPECT_TRUE(lint("SC_HOT_PATH void f(Buf& out) {\n"
                     "    // sc_lint: allow(hotpath-alloc) inline buffer\n"
                     "    out.push_back(1);\n"
                     "}\n")
                    .empty());
}

TEST(ScLintHotPath, WaiverNamesTheRule) {
    const auto diags = lint("SC_HOT_PATH void f(Buf& out) {\n"
                            "    // sc_lint: allow(raw-mutex) wrong rule named\n"
                            "    out.push_back(1);\n"
                            "}\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "hotpath-alloc");
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(ScLintHotPath, IdentifierMustBeACall) {
    // A member or local merely NAMED like a deny-listed call is fine...
    EXPECT_TRUE(lint("SC_HOT_PATH int f(S s) { return s.reserve; }\n").empty());
    // ...but calling it is not.
    EXPECT_EQ(lint("SC_HOT_PATH void f(S s) { s.reserve(4); }\n").size(), 1u);
}

TEST(ScLintEventLoop, BlockingCallsAreNamed) {
    const auto diags = lint(
        "SC_EVENT_LOOP_ONLY void step() {\n"
        "    conn.write_all(buf);\n"
        "    origin.connect(ep);\n"
        "}\n");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "eventloop-blocking");
    EXPECT_NE(diags[0].message.find("write_all"), std::string::npos);
    EXPECT_NE(diags[1].message.find("connect"), std::string::npos);
}

TEST(ScLintEventLoop, FileIoIsBlocking) {
    // Disk work (the src/store tier) must stay on worker threads.
    const auto diags = lint(
        "SC_EVENT_LOOP_ONLY void touch() {\n"
        "    const int fd = open(path, 0);\n"
        "    pread(fd, buf, n, 0);\n"
        "    fdatasync(fd);\n"
        "}\n");
    ASSERT_EQ(diags.size(), 3u);
    for (const auto& d : diags) EXPECT_EQ(d.rule, "eventloop-blocking");
}

TEST(ScLintEventLoop, SummaryEncodingIsBlocking) {
    // Draining the journal / serializing a bitmap takes node_mu_ and can be
    // megabytes of work; the loop must hand it to the worker pool instead.
    const auto diags = lint(
        "SC_EVENT_LOOP_ONLY void on_resync() {\n"
        "    const auto chunks = node_.encode_full_update_chunks();\n"
        "    sync_node_locked();\n"
        "}\n");
    ASSERT_EQ(diags.size(), 2u);
    for (const auto& d : diags) EXPECT_EQ(d.rule, "eventloop-blocking");
    // ...but ENQUEUEING the push is exactly what the loop should do.
    EXPECT_TRUE(lint("SC_EVENT_LOOP_ONLY void on_resync() {\n"
                     "    enqueue_task([this, id] { push_full_summary_to(id); });\n"
                     "}\n")
                    .empty());
}

TEST(ScLintEventLoop, FileIoOffTheLoopIsFine) {
    EXPECT_TRUE(lint("void flush(int fd) { fsync(fd); ftruncate(fd, 0); }\n").empty());
}

// --- raw-counter-shift ----------------------------------------------------

TEST(ScLintCounterShift, FlagsWidthShiftOutsideCounterMath) {
    const auto diags = lint("unsigned m = (1u << counter_bits) - 1u;");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "raw-counter-shift");
}

TEST(ScLintCounterShift, CounterMathHeaderIsExempt) {
    EXPECT_TRUE(lint_source("src/bloom/counter_math.hpp",
                            "return (1u << counter_bits) - 1u;")
                    .empty());
}

TEST(ScLintCounterShift, ShiftWithoutWidthIdentIsFine) {
    EXPECT_TRUE(lint("unsigned m = (1u << bits) - 1u; use(counter_bits_);").empty());
}

// --- raw-poll -------------------------------------------------------------

TEST(ScLintRawPoll, FlagsGlobalReadinessCalls) {
    for (const char* call : {"::poll(fds, n, 50)", "poll(fds, n, 50)",
                             "epoll_wait(ep, evs, 64, -1)",
                             "ppoll(fds, n, &ts, nullptr)",
                             "epoll_pwait(ep, evs, 64, -1, nullptr)"}) {
        const auto diags = lint("void f() { " + std::string(call) + "; }");
        ASSERT_EQ(diags.size(), 1u) << call;
        EXPECT_EQ(diags[0].rule, "raw-poll");
    }
}

TEST(ScLintRawPoll, NetLayerIsExempt) {
    EXPECT_TRUE(lint_source("src/net/event_backend.cpp",
                            "int n = ::poll(pfds_.data(), pfds_.size(), ms);")
                    .empty());
    EXPECT_TRUE(lint_source("src/net/fd_poll.hpp",
                            "if (::poll(&pfd, 1, timeout_ms) < 0) {}")
                    .empty());
}

TEST(ScLintRawPoll, MethodsAndWrappersAreNotRawCalls) {
    // Member calls and namespace-qualified wrappers are someone else's
    // abstraction, not a direct syscall.
    EXPECT_TRUE(lint("void f() { backend.poll(out); sel->epoll_wait(out); }").empty());
    EXPECT_TRUE(lint("void f() { mylib::poll(fds, n, 50); }").empty());
    // A member merely named like the syscall is fine too.
    EXPECT_TRUE(lint("int f(S s) { return s.poll; }").empty());
}

TEST(ScLintRawPoll, WaiverSuppresses) {
    EXPECT_TRUE(lint("void f() {\n"
                     "    // sc_lint: allow(raw-poll) startup probe, pre-loop\n"
                     "    ::poll(fds, n, 0);\n"
                     "}\n")
                    .empty());
}

// --- rule selection -------------------------------------------------------

TEST(ScLintOptions, RuleFilterRunsOnlyThatRule) {
    const std::string text =
        "std::mutex mu;\nunsigned m = (1u << counter_bits) - 1u;\n";
    Options only_mutex;
    only_mutex.rules = {"raw-mutex"};
    const auto diags = lint(text, only_mutex);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "raw-mutex");
    EXPECT_EQ(lint(text).size(), 2u);
}

TEST(ScLintOptions, AllRulesListsFive) {
    EXPECT_EQ(sc::lint::all_rules().size(), 5u);
}

}  // namespace
