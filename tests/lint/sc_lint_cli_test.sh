#!/usr/bin/env bash
# sc_lint CLI contract: exit codes, diagnostic lines on stdout, and the
# tree-wide gate (the real src/ must lint clean).
#
#   $1  path to the sc_lint binary
#   $2  fixture directory (tests/lint/fixtures)
#   $3  the repository's src/ directory
set -u

LINT=$1
FIXTURES=$2
SRC=$3
fail=0

check() { # <label> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1: expected exit $2, got $3"
    fail=1
  fi
}

# Clean fixture: exit 0, no diagnostics on stdout.
out=$("$LINT" "$FIXTURES/known_good.cpp" 2>/dev/null); rc=$?
check "known_good exit" 0 "$rc"
if [ -n "$out" ]; then
  echo "FAIL: known_good printed diagnostics:"; echo "$out"; fail=1
fi

# Seeded fixture: exit 1, and every seeded rule id appears on stdout.
out=$("$LINT" "$FIXTURES/known_bad.cpp" 2>/dev/null); rc=$?
check "known_bad exit" 1 "$rc"
for rule in raw-mutex hotpath-alloc eventloop-blocking raw-counter-shift raw-poll \
            raw-decode exhaustive-wire-switch waiver-sanity; do
  if ! printf '%s\n' "$out" | grep -q "\[$rule\]"; then
    echo "FAIL: known_bad output is missing rule [$rule]"; fail=1
  fi
done
count=$(printf '%s\n' "$out" | grep -c ': error: ')
if [ "$count" -ne 27 ]; then
  echo "FAIL: known_bad: expected 27 diagnostics, got $count"; echo "$out"; fail=1
fi

# Stale-waiver fixture: informational only — exit 0, clean stdout, and the
# unused-waiver note lands on stderr.
out=$("$LINT" "$FIXTURES/stale_waiver.cpp" 2>/dev/null); rc=$?
err=$("$LINT" "$FIXTURES/stale_waiver.cpp" 2>&1 >/dev/null)
check "stale_waiver exit" 0 "$rc"
if [ -n "$out" ]; then
  echo "FAIL: stale_waiver printed diagnostics:"; echo "$out"; fail=1
fi
if ! printf '%s\n' "$err" | grep -q ': note: unused sc_lint waiver'; then
  echo "FAIL: stale_waiver produced no unused-waiver note:"; echo "$err"; fail=1
fi

# A narrowed run must not call waivers stale (their rule never executed).
err=$("$LINT" --rule=raw-mutex "$FIXTURES/stale_waiver.cpp" 2>&1 >/dev/null)
if printf '%s\n' "$err" | grep -q ': note: '; then
  echo "FAIL: --rule= run still emitted notes:"; echo "$err"; fail=1
fi

# --rule= narrows the run.
out=$("$LINT" --rule=raw-mutex "$FIXTURES/known_bad.cpp" 2>/dev/null); rc=$?
check "--rule=raw-mutex exit" 1 "$rc"
if printf '%s\n' "$out" | grep -qv '\[raw-mutex\]'; then
  echo "FAIL: --rule=raw-mutex leaked other rules:"; echo "$out"; fail=1
fi

# Usage and IO errors are exit 2, not 0/1.
"$LINT" >/dev/null 2>&1; check "no-args exit" 2 "$?"
"$LINT" --rule=not-a-rule "$FIXTURES/known_good.cpp" >/dev/null 2>&1
check "unknown-rule exit" 2 "$?"
"$LINT" "$FIXTURES/does_not_exist.cpp" >/dev/null 2>&1
check "missing-file exit" 2 "$?"

# The gate CI enforces: the real source tree lints clean.
out=$("$LINT" "$SRC" 2>/dev/null); rc=$?
check "src/ gate exit" 0 "$rc"
if [ "$rc" -ne 0 ]; then printf '%s\n' "$out"; fi

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "sc_lint CLI contract OK"
