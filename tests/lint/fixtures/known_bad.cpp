// sc_lint fixture: one seeded violation per rule, at lines the tests pin
// exactly. Never compiled — lint input only. Adding lines above existing
// seeds breaks tests/lint/sc_lint_test.cpp on purpose: update both.
#include <mutex>

namespace fixture {

std::mutex raw_mu;  // seed 1 (line 8): raw-mutex

void locked() {
    const std::lock_guard lock(raw_mu);  // seed 2 (line 11): raw-mutex
}

SC_HOT_PATH unsigned* hot_alloc() {
    return new unsigned[4];  // seed 3 (line 15): hotpath-alloc
}

SC_HOT_PATH void hot_grow(Vec& v) {
    v.push_back(1u);  // seed 4 (line 19): hotpath-alloc, no waiver
}

SC_EVENT_LOOP_ONLY void stall() {
    wait_readable(fd_, 50);  // seed 5 (line 23): eventloop-blocking
    sleep_for(ms(10));       // seed 6 (line 24): eventloop-blocking
}

unsigned overflow_bait(unsigned counter_bits) {
    return (1u << counter_bits) - 1u;  // seed 7 (line 28): raw-counter-shift
}

SC_EVENT_LOOP_ONLY void disk_on_loop() {
    const int fd = open(path_, 0);  // seed 8 (line 32): eventloop-blocking
    pread(fd, buf_, 16, 0);         // seed 9 (line 33): eventloop-blocking
    pwrite(fd, buf_, 16, 0);        // seed 10 (line 34): eventloop-blocking
    fsync(fd);                      // seed 11 (line 35): eventloop-blocking
    fdatasync(fd);                  // seed 12 (line 36): eventloop-blocking
    ftruncate(fd, 0);               // seed 13 (line 37): eventloop-blocking
}

SC_EVENT_LOOP_ONLY void summary_on_loop() {
    sync_node_locked();              // seed 14 (line 41): eventloop-blocking
    encode_full_update();            // seed 15 (line 42): eventloop-blocking
    encode_full_update_chunks();     // seed 16 (line 43): eventloop-blocking
    encode_pending_updates();        // seed 17 (line 44): eventloop-blocking
}

void readiness_by_hand() {
    ::poll(fds_, n_, 50);           // seed 18 (line 48): raw-poll
    epoll_wait(ep_, evs_, 64, -1);  // seed 19 (line 49): raw-poll
    ppoll(fds_, n_, &ts_, &set_);   // seed 20 (line 50): raw-poll
}

SC_EVENT_LOOP_ONLY void oneshot_on_loop() {
    net::wait_fd_readable(fd_, 50);  // seed 21 (line 54): eventloop-blocking
}

SC_UNTRUSTED_DECODE_TU;

void raw_decode_reads(const Buf& b, unsigned off) {
    unsigned v = 0;
    memcpy(&v, b.ptr, 4);                                  // seed 22 (line 61): raw-decode
    const char* p = reinterpret_cast<const char*>(b.ptr);  // seed 23 (line 62): raw-decode
    use(b.data() + off);                                   // seed 24 (line 63): raw-decode
    sscanf(p, "%u", &v);                                   // seed 25 (line 64): raw-decode
}

void switch_missing_cases(IcpOpcode op) {
    switch (op) {  // seed 26 (line 68): exhaustive-wire-switch
        case IcpOpcode::query: break;
        case IcpOpcode::hit: break;
    }
}

void stale_rule_name() {
    // sc_lint: allow(no-such-rule) typo'd rule id  -- seed 27 (line 75): waiver-sanity
    use(0);
}

}  // namespace fixture
