// sc_lint fixture: a waiver naming a real rule that nothing trips. Must
// lint clean (exit 0) but produce an informational unused-waiver note at
// line 8 — stale allows may not rot silently. Never compiled — lint input.

namespace fixture {

void quiet() {
    // sc_lint: allow(raw-poll) left behind after the poll call was removed
    use(0);
}

}  // namespace fixture
