// sc_lint fixture: everything here is the BLESSED way to write it, so the
// checker must stay silent. Never compiled — lint input only.
#include "util/thread_annotations.hpp"

namespace fixture {

class Good {
public:
    void touch() SC_EXCLUDES(mu_) {
        const sc::MutexLock lock(mu_);
        ++count_;
    }

private:
    mutable sc::Mutex mu_;
    int count_ SC_GUARDED_BY(mu_) = 0;
};

// Declaration only: the marker is checked where the body is.
SC_HOT_PATH bool probe(const char* key);

SC_HOT_PATH bool probe_inline(unsigned bit, const unsigned* words) {
    return (words[bit / 32u] >> (bit % 32u)) & 1u;  // plain bit math, no width ident
}

SC_HOT_PATH void probe_with_waiver(Indexes& out) {
    out.clear();
    // sc_lint: allow(hotpath-alloc) Indexes is a fixed-capacity inline array
    out.push_back(7u);
}

SC_EVENT_LOOP_ONLY void pump() {
    poll_once();          // readiness wait is the loop's job
    fill_available();     // bounded, non-blocking read
    write_some();         // non-blocking partial write
}

// Disk I/O belongs on worker threads (docs/STORAGE.md): an UNMARKED
// function may fsync freely — only the event loop is forbidden to.
void flush_segment(int fd) {
    fdatasync(fd);
    ftruncate(fd, 0);
}

SC_EVENT_LOOP_ONLY void note_disk_state(const Seg& s) {
    remember(s.open);  // a member merely NAMED like a blocking call
}

// Strings and comments must not confuse the lexer:
// std::mutex in a comment is fine, and so is the literal below.
const char* kDoc = "never use std::mutex directly; wait_readable() blocks";

unsigned counter_mask(unsigned bits) {
    return sc::counter_math::saturation_max(bits);  // the only legal spelling
}

// The decode discipline: this marker puts the whole TU under raw-decode.
SC_UNTRUSTED_DECODE_TU;

unsigned checked_decode(std::string_view wire) {
    util::ByteReader r = util::ByteReader::over(wire);  // the blessed cursor
    const auto v = r.u32be();
    return r.ok() ? v : 0u;
}

void decode_lookalikes(Frame& frame, const char* p) {
    frame.memcpy(p);        // a METHOD named like a libc read is fine
    custom::sscanf(p);      // so is a non-std namespaced wrapper
}

const char* bless_cast(const Buf& b) {
    // sc_lint: allow(raw-decode) fixture: a deliberately waived cast
    return reinterpret_cast<const char*>(b.ptr);
}

// Wire-enum switches: a default arm is one honest way to be total...
const char* opcode_label(IcpOpcode op) {
    switch (op) {
        case IcpOpcode::query: return "query";
        case IcpOpcode::hit: return "hit";
        default: return "other";
    }
}

// ...and covering every enumerator is the other.
bool apply_is_terminal(SummaryApplyResult r) {
    switch (r) {
        case SummaryApplyResult::applied: return false;
        case SummaryApplyResult::partial: return false;
        case SummaryApplyResult::duplicate: return false;
        case SummaryApplyResult::stale: return false;
        case SummaryApplyResult::gap: return false;
        case SummaryApplyResult::need_bootstrap: return true;
        case SummaryApplyResult::need_resync: return true;
        case SummaryApplyResult::rejected: return true;
    }
    return true;
}

}  // namespace fixture
