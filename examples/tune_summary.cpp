// Capacity planner — turns the paper's Section V-E recommendations into a
// tool: given your cache size, peer count, DRAM budget for summaries, and
// a false-positive target, it prints the Bloom configuration to deploy
// (load factor, hash count) and what it will cost on the wire.
//
//     ./examples/tune_summary <cache-GB> <peers> [fp-target]
//     e.g. ./examples/tune_summary 8 16 0.02
#include <cstdio>
#include <cstdlib>

#include "bloom/bloom_math.hpp"
#include "summary/message_costs.hpp"
#include "util/bytes.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    const double cache_gb = argc > 1 ? std::atof(argv[1]) : 8.0;
    const int peers = argc > 2 ? std::atoi(argv[2]) : 16;
    const double fp_target = argc > 3 ? std::atof(argv[3]) : 0.02;
    if (cache_gb <= 0 || peers < 1 || fp_target <= 0 || fp_target >= 1) {
        std::fprintf(stderr, "usage: %s <cache-GB> <peers> [fp-target in (0,1)]\n", argv[0]);
        return 2;
    }

    const double docs = cache_gb * kGiB / kAverageDocumentBytes;
    std::printf("cache %.1f GB  =>  ~%s cached documents (8 KB average)\n", cache_gb,
                format_count(static_cast<std::uint64_t>(docs)).c_str());
    std::printf("federation: %d peers, false-positive target %.2f%%\n\n", peers,
                100 * fp_target);

    std::printf("%-12s %8s %14s %18s %20s\n", "load factor", "best k", "P(fp)/summary",
                "replica bytes", "all-peer DRAM");
    std::uint32_t chosen_lf = 0;
    unsigned chosen_k = 0;
    for (const std::uint32_t lf : {4u, 8u, 12u, 16u, 24u, 32u}) {
        const unsigned k = bloom_optimal_k(lf, 1.0);
        const double fp = bloom_fp_approx(lf, 1.0, k);
        const auto replica = static_cast<std::uint64_t>(docs * lf / 8.0);
        std::printf("%-12u %8u %13.4f%% %18s %20s %s\n", lf, k, 100 * fp,
                    format_bytes(replica).c_str(),
                    format_bytes(replica * static_cast<std::uint64_t>(peers)).c_str(),
                    (chosen_lf == 0 && fp <= fp_target) ? "<== first to meet target" : "");
        if (chosen_lf == 0 && fp <= fp_target) {
            chosen_lf = lf;
            chosen_k = k;
        }
    }

    if (chosen_lf == 0) {
        std::printf("\nNo load factor up to 32 meets %.3f%%; need %.1f bits/doc.\n",
                    100 * fp_target, bloom_bits_per_entry_for_fp(fp_target, 8));
        return 1;
    }

    std::printf("\nRecommendation: load factor %u with %u hash functions "
                "(paper's defaults: 8-16 bits/doc, k>=4).\n",
                chosen_lf, chosen_k);

    // Wire cost at the recommended 1% update threshold.
    const double new_docs_per_update = 0.01 * docs;
    const double flips = 4.0 * new_docs_per_update * 2.0;  // adds + evictions
    const double update_bytes = static_cast<double>(kBloomUpdateHeaderBytes) +
                                static_cast<double>(kBloomUpdatePerFlipBytes) * flips;
    std::printf("At a 1%% update threshold each broadcast is ~%s per peer "
                "(%s to all %d peers),\nsent once every ~%s new documents.\n",
                format_bytes(static_cast<std::uint64_t>(update_bytes)).c_str(),
                format_bytes(static_cast<std::uint64_t>(update_bytes * peers)).c_str(), peers,
                format_count(static_cast<std::uint64_t>(new_docs_per_update)).c_str());
    std::printf("Counter safety: Pr[any 4-bit counter overflows] <= %.2e.\n",
                counter_overflow_bound(docs * chosen_lf, docs, chosen_k, 16));
    return 0;
}
