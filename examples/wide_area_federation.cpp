// Live wide-area federation demo — the prototype of Section VI on real
// sockets (loopback): one origin-server emulator, three "squidlet" proxies
// speaking HTTP-lite over TCP and SC-ICP over UDP, and a trace-replay
// client. Watch the summaries propagate: the second time a document is
// requested through a *different* proxy, it is served sibling-to-sibling.
//
//     ./examples/wide_area_federation [requests]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"
#include "proto/replay_client.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    const std::size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;

    OriginServer origin({.port = 0, .reply_delay = std::chrono::milliseconds(2)});
    std::printf("origin server listening on %s\n", origin.endpoint().to_string().c_str());

    constexpr std::size_t kProxies = 3;
    std::vector<std::unique_ptr<MiniProxy>> proxies;
    for (std::size_t i = 0; i < kProxies; ++i) {
        MiniProxyConfig cfg;
        cfg.id = static_cast<NodeId>(i + 1);
        cfg.origin = origin.endpoint();
        cfg.mode = ShareMode::summary;
        cfg.cache_bytes = 8ull * 1024 * 1024;
        cfg.update_threshold = 0.005;
        proxies.push_back(std::make_unique<MiniProxy>(cfg));
    }
    for (auto& p : proxies)
        for (auto& q : proxies)
            if (p != q) p->add_sibling(q->id(), q->icp_endpoint(), q->http_endpoint());
    for (auto& p : proxies) {
        p->start();
        std::printf("proxy %u: HTTP %s  ICP/UDP %s\n", p->id(),
                    p->http_endpoint().to_string().c_str(),
                    p->icp_endpoint().to_string().c_str());
    }

    TraceProfile profile = standard_profile(TraceKind::nlanr, 0.01);
    profile.requests = num_requests;
    profile.clients = 30;
    profile.shared_docs = 300;
    profile.size_lo = 200;
    profile.size_hi = 60'000;
    const auto trace = TraceGenerator(profile).generate_all();

    std::printf("\nreplaying %zu requests across the federation...\n", trace.size());
    const auto stats = replay_trace(trace, {proxies[0]->http_endpoint(),
                                            proxies[1]->http_endpoint(),
                                            proxies[2]->http_endpoint()});

    std::printf("\nclient view: %llu requests, %.1f%% local hits, %.1f%% remote hits, "
                "%.1f%% misses, mean latency %.2f ms\n",
                static_cast<unsigned long long>(stats.requests),
                100.0 * stats.local_hits / stats.requests,
                100.0 * stats.remote_hits / stats.requests,
                100.0 * stats.misses / stats.requests, 1000.0 * stats.latency_s.mean());

    std::printf("\nper-proxy protocol economy:\n");
    std::printf("%6s %9s %10s %10s %12s %12s %12s %10s\n", "proxy", "requests", "localHit",
                "remoteHit", "queriesSent", "updatesSent", "updatesRecv", "falseHit");
    for (auto& p : proxies) {
        const auto s = p->stats();
        std::printf("%6u %9llu %10llu %10llu %12llu %12llu %12llu %10llu\n", p->id(),
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.local_hits),
                    static_cast<unsigned long long>(s.remote_hits),
                    static_cast<unsigned long long>(s.icp_queries_sent),
                    static_cast<unsigned long long>(s.updates_sent),
                    static_cast<unsigned long long>(s.updates_received),
                    static_cast<unsigned long long>(s.false_hit_queries));
    }
    std::printf("\norigin served %llu fetches (= federation misses)\n",
                static_cast<unsigned long long>(origin.requests_served()));

    for (auto& p : proxies) p->stop();
    origin.stop();
    return 0;
}
