// Campus cache-sharing study — the scenario the paper's introduction
// motivates: each department of a university runs its own proxy behind a
// shared uplink, and the administrator wants to know (a) how much traffic
// cooperation saves and (b) what the cooperation itself costs under ICP
// versus summary cache.
//
// The example synthesizes a UPisa-like departmental trace, then prints a
// small decision report. Run with an optional scale argument:
//     ./examples/campus_study [scale]
#include <cstdio>
#include <cstdlib>

#include "cache/infinite_cache.hpp"
#include "sim/share_sim.hpp"
#include "trace/generator.hpp"
#include "util/bytes.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;

    TraceProfile profile = standard_profile(TraceKind::upisa, scale);
    std::printf("Synthesizing a departmental trace: %s requests from %u clients, "
                "%u department proxies...\n",
                format_count(profile.requests).c_str(), profile.clients,
                profile.proxy_groups);
    const auto trace = TraceGenerator(profile).generate_all();

    InfiniteCacheStats inf;
    for (const Request& r : trace) inf.add_request(r.url, r.size, r.version);
    const std::uint64_t cache_bytes = std::max<std::uint64_t>(
        1 << 20, inf.infinite_cache_bytes() / 10 / profile.proxy_groups);
    std::printf("Per-proxy cache: %s (10%% of the %s working set)\n\n",
                format_bytes(cache_bytes).c_str(),
                format_bytes(inf.infinite_cache_bytes()).c_str());

    ShareSimConfig cfg;
    cfg.num_proxies = profile.proxy_groups;
    cfg.cache_bytes_per_proxy = cache_bytes;

    // Option 0: no cooperation.
    cfg.scheme = SharingScheme::none;
    cfg.protocol = QueryProtocol::none;
    const auto solo = run_share_sim(cfg, trace);

    // Option 1: ICP.
    cfg.scheme = SharingScheme::simple;
    cfg.protocol = QueryProtocol::icp;
    const auto icp = run_share_sim(cfg, trace);

    // Option 2: summary cache (Bloom, load factor 16, 1% threshold).
    cfg.protocol = QueryProtocol::summary;
    cfg.summary_kind = SummaryKind::bloom;
    cfg.update_threshold = 0.01;
    cfg.min_update_changes = 350;  // batch updates into IP-packet-sized bursts
    const auto sc = run_share_sim(cfg, trace);

    std::printf("%-22s %14s %14s %14s\n", "", "no-cooperation", "ICP", "summary-cache");
    std::printf("%-22s %13.2f%% %13.2f%% %13.2f%%\n", "total hit ratio",
                100 * solo.total_hit_ratio(), 100 * icp.total_hit_ratio(),
                100 * sc.total_hit_ratio());
    std::printf("%-22s %13.2f%% %13.2f%% %13.2f%%\n", "byte hit ratio",
                100 * solo.byte_hit_ratio(), 100 * icp.byte_hit_ratio(),
                100 * sc.byte_hit_ratio());
    std::printf("%-22s %14s %14s %14s\n", "uplink fetches",
                format_count(solo.server_fetches).c_str(),
                format_count(icp.server_fetches).c_str(),
                format_count(sc.server_fetches).c_str());
    std::printf("%-22s %14.3f %14.3f %14.3f\n", "protocol msgs/request",
                solo.messages_per_request(), icp.messages_per_request(),
                sc.messages_per_request());
    std::printf("%-22s %14.1f %14.1f %14.1f\n", "protocol bytes/request",
                solo.message_bytes_per_request(), icp.message_bytes_per_request(),
                sc.message_bytes_per_request());
    std::printf("%-22s %14s %14s %14s\n", "summary DRAM/proxy", "-", "-",
                format_bytes(sc.summary_replica_bytes + sc.summary_owner_bytes).c_str());

    std::printf("\nVerdict: cooperation lifts the hit ratio by %.1f points; summary cache "
                "delivers it with %.0fx fewer\ninter-proxy messages than ICP "
                "(false hits: %.3f%% of requests, false misses: %.3f%%).\n",
                100 * (sc.total_hit_ratio() - solo.total_hit_ratio()),
                icp.messages_per_request() / std::max(1e-9, sc.messages_per_request()),
                100 * sc.false_hit_ratio(), 100 * sc.false_miss_ratio());
    return 0;
}
