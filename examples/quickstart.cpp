// Quickstart: the summary-cache building blocks in ~60 lines.
//
//  1. A counting Bloom filter mirrors a proxy's cache directory
//     (insertions AND deletions — the structure this paper introduced).
//  2. A DeltaBatcher decides WHEN the churn is worth broadcasting (the
//     update-delay threshold); a SummaryCacheNode encodes it as SC-ICP
//     update datagrams (the cheaper of delta vs full bitmap).
//  3. A second node ingests those datagrams and probes its replica to
//     decide which siblings are worth querying — the step that replaces
//     ICP's multicast-on-every-miss.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "bloom/counting_bloom_filter.hpp"
#include "core/delta_batcher.hpp"
#include "core/summary_cache_node.hpp"

int main() {
    using namespace sc;

    // --- 1. counting Bloom filter ---------------------------------------
    CountingBloomFilter filter(HashSpec{/*k=*/4, /*bits per fn=*/32, /*m=*/16 * 1024});
    filter.insert("http://www.example.com/index.html");
    filter.insert("http://www.example.com/logo.png");
    filter.erase("http://www.example.com/logo.png");  // cache replacement

    std::printf("index.html cached?  %s\n",
                filter.may_contain("http://www.example.com/index.html") ? "maybe (yes)" : "no");
    std::printf("logo.png cached?    %s\n",
                filter.may_contain("http://www.example.com/logo.png") ? "maybe" : "no (deleted)");

    // --- 2. a proxy node publishing its directory ------------------------
    SummaryCacheNodeConfig cfg_a;
    cfg_a.node_id = 1;
    cfg_a.expected_docs = 1024;  // cache bytes / 8 KB
    SummaryCacheNode proxy_a(cfg_a);

    // A sibling first BOOTSTRAPS its replica from a full-bitmap snapshot —
    // deltas are sequenced against that sync point, so updates lost in the
    // network are detected instead of silently poisoning the replica.
    SummaryCacheNodeConfig cfg_b = cfg_a;
    cfg_b.node_id = 2;
    SummaryCacheNode proxy_b(cfg_b);
    proxy_b.apply_sibling_update(decode_dirupdate(proxy_a.encode_full_update()));

    // Broadcast when 1% of the directory is new (Section V-A).
    core::DeltaBatcher batcher(core::DeltaBatcherConfig{/*update_threshold=*/0.01});
    for (int i = 0; i < 5; ++i) {
        proxy_a.on_cache_insert("http://news.site/article" + std::to_string(i));
        batcher.on_new_document();
    }

    std::vector<std::vector<std::uint8_t>> updates;
    if (const auto batch = batcher.try_begin_flush(/*cached_docs=*/100, /*now=*/0.0,
                                                   /*pending_changes=*/0)) {
        updates = proxy_a.encode_pending_updates();  // ICP_OP_DIRUPDATE datagrams
        batcher.finish_flush(/*now=*/0.0, *batch);
        std::printf("\nproxy A crossed its update threshold: %zu datagram(s) "
                    "coalescing %llu insert(s)\n",
                    updates.size(), static_cast<unsigned long long>(*batch));
    }

    // --- 3. the sibling ingesting the updates and probing ----------------
    for (const auto& datagram : updates)
        proxy_b.apply_sibling_update(decode_dirupdate(datagram));

    const auto promising = proxy_b.promising_siblings("http://news.site/article3");
    std::printf("who might have article3? %zu sibling(s)%s\n", promising.size(),
                promising.empty() ? "" : " -> query only those, not everyone");
    const auto nobody = proxy_b.promising_siblings("http://never.seen/doc");
    std::printf("who might have an unseen doc? %zu sibling(s) -> no query at all\n",
                nobody.size());
    return 0;
}
